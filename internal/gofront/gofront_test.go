package gofront

import (
	"strings"
	"testing"
)

func lowerOK(t *testing.T, src string) *Package {
	t.Helper()
	pkg, err := LowerSource("test.go", src)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	for _, e := range pkg.Errors {
		t.Errorf("unexpected decl error: %v", e)
	}
	return pkg
}

func TestIsGoSource(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package main\n", true},
		{"// a comment\npackage p\n", true},
		{"/* block\ncomment */\npackage p\n", true},
		{"int x;\nvoid main() { }\n", false},
		{"// toy program\nint x;\n", false},
		{"", false},
		{"atomic { x = 1; }", false},
	}
	for _, c := range cases {
		if got := IsGoSource(c.src); got != c.want {
			t.Errorf("IsGoSource(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestLockSpanRecovery(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

var mu sync.Mutex
var x int

func set(v int) {
	mu.Lock()
	x = v
	mu.Unlock()
}
`)
	if len(pkg.Sections) != 1 {
		t.Fatalf("sections = %d, want 1", len(pkg.Sections))
	}
	sec := pkg.Sections[0]
	if sec.Guard != "mu" || sec.RO || sec.Fn != "set" {
		t.Errorf("section = %+v", sec)
	}
	if got := pkg.Position(sec.Pos).Line; got != 9 {
		t.Errorf("section Go line = %d, want 9 (the Lock call)", got)
	}
	if !strings.Contains(pkg.Minic, "atomic {") {
		t.Errorf("no atomic block emitted:\n%s", pkg.Minic)
	}
	// The access to x inside the span must record the declared guard.
	var found bool
	for _, a := range pkg.Accesses {
		if a.Slot == "x" && a.Write {
			found = true
			if len(a.Held) != 1 || a.Held[0] != "mu" {
				t.Errorf("write to x held=%v, want [mu]", a.Held)
			}
			if a.Section != 0 {
				t.Errorf("write to x section=%d, want 0", a.Section)
			}
		}
	}
	if !found {
		t.Error("write access to x not recorded")
	}
	if len(pkg.Guards) != 1 || pkg.Guards[0] != "mu" {
		t.Errorf("guards = %v", pkg.Guards)
	}
}

func TestDeferUnlockIdiom(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

type Box struct {
	mu sync.Mutex
	v  int
}

func (b *Box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}
`)
	if len(pkg.Sections) != 1 || pkg.Sections[0].Guard != "Box.mu" {
		t.Fatalf("sections = %+v", pkg.Sections)
	}
	// The trailing return must be split out of the atomic block.
	if !strings.Contains(pkg.Minic, "return ") {
		t.Errorf("no return emitted:\n%s", pkg.Minic)
	}
	ai := strings.Index(pkg.Minic, "atomic {")
	ri := strings.Index(pkg.Minic, "return ")
	if ai < 0 || ri < ai {
		t.Errorf("return not after atomic:\n%s", pkg.Minic)
	}
}

func TestRWMutexReadSection(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

type Cache struct {
	mu sync.RWMutex
	n  int
}

func (c *Cache) Read() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *Cache) Write(v int) {
	c.mu.Lock()
	c.n = v
	c.mu.Unlock()
}
`)
	if len(pkg.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(pkg.Sections))
	}
	if !pkg.Sections[0].RO {
		t.Error("RLock section not marked RO")
	}
	if pkg.Sections[1].RO {
		t.Error("Lock section wrongly marked RO")
	}
	if pkg.Sections[0].Guard != "Cache.mu" || pkg.Sections[1].Guard != "Cache.mu" {
		t.Errorf("guards: %q %q", pkg.Sections[0].Guard, pkg.Sections[1].Guard)
	}
}

func TestEmbeddedMutex(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

type Reg struct {
	sync.Mutex
	n int
}

func (r *Reg) Bump() {
	r.Lock()
	r.n++
	r.Unlock()
}
`)
	if len(pkg.Sections) != 1 || pkg.Sections[0].Guard != "Reg.Mutex" {
		t.Fatalf("sections = %+v", pkg.Sections)
	}
}

func TestDirectiveSections(t *testing.T) {
	pkg := lowerOK(t, `package p

var a int
var b int

//lockinfer:atomic
func swap() {
	t := a
	a = b
	b = t
}

func bump() {
	//lockinfer:atomic
	{
		a++
		b++
	}
}
`)
	if len(pkg.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(pkg.Sections))
	}
	for _, sec := range pkg.Sections {
		if sec.Guard != "" {
			t.Errorf("directive section has declared guard %q", sec.Guard)
		}
	}
	for _, a := range pkg.Accesses {
		if len(a.Held) != 1 || a.Held[0] != AtomicGuard {
			t.Errorf("access %s held=%v, want [%s]", a.Slot, a.Held, AtomicGuard)
		}
	}
}

func TestNestedSpansRecordHeld(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

var mu1 sync.Mutex
var mu2 sync.Mutex
var x int

func f() {
	mu1.Lock()
	mu2.Lock()
	x = 1
	mu2.Unlock()
	mu1.Unlock()
}
`)
	if len(pkg.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(pkg.Sections))
	}
	inner := pkg.Sections[1]
	if inner.Guard != "mu2" || len(inner.Held) != 1 || inner.Held[0] != "mu1" {
		t.Errorf("inner section = %+v", inner)
	}
	for _, a := range pkg.Accesses {
		if a.Slot == "x" && (len(a.Held) != 2 || a.Held[0] != "mu1" || a.Held[1] != "mu2") {
			t.Errorf("x held=%v, want [mu1 mu2]", a.Held)
		}
	}
}

func TestSpawnsAndBarriers(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

var n int

func worker(k int) {
	n = k
}

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(1)
	go func(v int) {
		n = v
		wg.Done()
	}(2)
	wg.Wait()
}
`)
	var spawns int
	for _, c := range pkg.Calls {
		if c.Go {
			spawns++
		}
	}
	if spawns != 2 {
		t.Errorf("spawn calls = %d, want 2", spawns)
	}
	if len(pkg.Barriers) != 1 || pkg.Barriers[0].Fn != "main" {
		t.Errorf("barriers = %+v", pkg.Barriers)
	}
	// The lifted literal must be a real function.
	var lifted bool
	for _, fn := range pkg.Funcs {
		if strings.Contains(fn.MinicName, "_go") {
			lifted = true
		}
	}
	if !lifted {
		t.Errorf("goroutine literal not lifted: %+v", pkg.Funcs)
	}
}

func TestPartialLowering(t *testing.T) {
	pkg, err := LowerSource("test.go", `package p

var x int

func good() {
	x = 1
}

func bad(ch chan int) {
	ch <- x
}

func alsoGood() int {
	return x
}
`)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	if len(pkg.Errors) == 0 {
		t.Fatal("expected a decl error for the channel function")
	}
	for _, e := range pkg.Errors {
		if !strings.Contains(e.Decl, "bad") {
			t.Errorf("error charged to %q, want func bad: %v", e.Decl, e)
		}
		if e.Pos.Line == 0 {
			t.Errorf("error has no position: %v", e)
		}
	}
	// good and alsoGood still lower.
	var names []string
	for _, fn := range pkg.Funcs {
		names = append(names, fn.MinicName)
	}
	if len(names) != 2 {
		t.Errorf("lowered funcs = %v, want [good alsoGood]", names)
	}
}

func TestRejectedBodyBecomesExtern(t *testing.T) {
	pkg, err := LowerSource("test.go", `package p

var x int

func helper() int {
	m := map[string]int{}
	return m["a"]
}

func caller() {
	x = helper()
}
`)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	if len(pkg.Errors) == 0 {
		t.Fatal("expected a decl error for the map function")
	}
	// helper degrades to an extern prototype; caller still lowers and calls it.
	if !strings.Contains(pkg.Minic, "int helper();") {
		t.Errorf("no extern prototype for helper:\n%s", pkg.Minic)
	}
	if !strings.Contains(pkg.Minic, "helper()") {
		t.Errorf("caller dropped:\n%s", pkg.Minic)
	}
}

func TestLineMapRoundTrip(t *testing.T) {
	pkg := lowerOK(t, `package p

var x int

func set(v int) {
	x = v
}
`)
	// Find the minic line of the assignment and map it back.
	lines := strings.Split(pkg.Minic, "\n")
	var minicLine int
	for i, ln := range lines {
		if strings.Contains(ln, "x = v;") {
			minicLine = i + 1
		}
	}
	if minicLine == 0 {
		t.Fatalf("assignment not found:\n%s", pkg.Minic)
	}
	gp := pkg.GoPos(minicLine)
	if gp.Line != 6 {
		t.Errorf("GoPos(%d).Line = %d, want 6", minicLine, gp.Line)
	}
}

func TestKeywordAndCollisionRenames(t *testing.T) {
	pkg := lowerOK(t, `package p

var while int

func atomic(nop int) int {
	new := nop + while
	return new
}
`)
	if strings.Contains(pkg.Minic, "int while;") || !strings.Contains(pkg.Minic, "int while_;") {
		t.Errorf("keyword global not renamed:\n%s", pkg.Minic)
	}
	// Slot identity stays the Go name.
	var ok bool
	for _, a := range pkg.Accesses {
		if a.Slot == "while" {
			ok = true
		}
	}
	if !ok {
		t.Errorf("slot identity lost: %+v", pkg.Accesses)
	}
}

func TestComplexGlobalInitGoesToInitFn(t *testing.T) {
	pkg := lowerOK(t, `package p

type Node struct{ v int }

var head = &Node{v: 41}
var size = 2 * 21
var table = make([]int, 8)
`)
	if pkg.InitFn == "" {
		t.Fatalf("no init function synthesized:\n%s", pkg.Minic)
	}
	if !strings.Contains(pkg.Minic, pkg.InitFn+"() {") {
		t.Errorf("init function body missing:\n%s", pkg.Minic)
	}
	// size is a constant expression: folded inline, not in the init fn.
	if !strings.Contains(pkg.Minic, "int size = 42;") {
		t.Errorf("constant init not folded:\n%s", pkg.Minic)
	}
}

func TestEarlyReturnInsideSpanRejected(t *testing.T) {
	pkg, err := LowerSource("test.go", `package p

import "sync"

var mu sync.Mutex
var x int

func f(c int) int {
	mu.Lock()
	if c > 0 {
		mu.Unlock()
		return 0
	}
	x = c
	mu.Unlock()
	return 1
}
`)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	if len(pkg.Errors) == 0 {
		t.Fatal("conditional unlock should be rejected")
	}
}

func TestTypeErrorChargedToDecl(t *testing.T) {
	pkg, err := LowerSource("test.go", `package p

var x int

func broken() {
	x = undefinedName
}

func fine() {
	x = 1
}
`)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	if len(pkg.Errors) == 0 {
		t.Fatal("expected type error")
	}
	if !strings.Contains(pkg.Errors[0].Msg, "type error") {
		t.Errorf("error = %v", pkg.Errors[0])
	}
	var fineLowered bool
	for _, fn := range pkg.Funcs {
		if fn.MinicName == "fine" {
			fineLowered = true
		}
	}
	if !fineLowered {
		t.Error("fine() should still lower")
	}
}

func TestLowerFilesNeverPanics(t *testing.T) {
	// Pathological but syntactically valid sources must come back as errors
	// or rejections, never a panic.
	srcs := []string{
		"package p\nfunc f() { f() }\n",
		"package p\nimport \"fmt\"\nfunc f() { fmt.Println() }\n",
		"package p\ntype T struct{ t *T }\nfunc f(t *T) *T { return t.t }\n",
		"package p\nvar x = x\n",
		"package p\nfunc f() (int, int) { return 1, 2 }\n",
	}
	for _, src := range srcs {
		if _, err := LowerSource("t.go", src); err != nil {
			// An error return is acceptable; a panic is not (it would fail
			// the test via the recover-free test harness).
			t.Logf("lowering returned error (ok): %v", err)
		}
	}
}
