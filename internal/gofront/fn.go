package gofront

// Function-body lowering: Go statements and expressions into minic text,
// with lock-span recovery (mu.Lock()…mu.Unlock() becomes an atomic block
// whose declared guard is recorded in the sidecar), //lockinfer:atomic
// directive sections, goroutine-literal lifting, and WaitGroup dropping.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type mutexOp struct {
	guard  string
	method string // Lock, Unlock, RLock, RUnlock
	pos    token.Pos
}

func (op *mutexOp) isLock() bool { return op.method == "Lock" || op.method == "RLock" }
func (op *mutexOp) ro() bool     { return op.method == "RLock" || op.method == "RUnlock" }
func (op *mutexOp) unlockMethod() string {
	if op.method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

type fnLowerer struct {
	l    *lowerer
	rec  *funcRec
	e    *emitter
	meta *fnMeta
	out  *declOut

	body          *ast.BlockStmt
	declPos       token.Pos
	funcDirective bool

	used        map[string]bool
	rename      map[types.Object]string
	pointerized map[types.Object]bool
	hoisted     map[types.Object]bool // span locals pre-declared outside atomic
	wgLocals    map[types.Object]bool // shared with lifted goroutine literals

	held []string
	secs []int

	tmpN *int
	goN  *int
}

func newFnLowerer(l *lowerer, rec *funcRec, out *declOut, wgShared map[types.Object]bool, tmpN, goN *int) *fnLowerer {
	if wgShared == nil {
		wgShared = map[types.Object]bool{}
	}
	return &fnLowerer{
		l: l, rec: rec, e: &emitter{}, meta: &fnMeta{}, out: out,
		used:        map[string]bool{},
		rename:      map[types.Object]string{},
		pointerized: map[types.Object]bool{},
		hoisted:     map[types.Object]bool{},
		wgLocals:    wgShared,
		tmpN:        tmpN, goN: goN,
	}
}

func (f *fnLowerer) tmp() string {
	*f.tmpN++
	return fmt.Sprintf("%s%d", f.l.tmpPre, *f.tmpN)
}

func (f *fnLowerer) localFor(obj types.Object, goName string) string {
	if obj != nil {
		if n, ok := f.rename[obj]; ok {
			return n
		}
	}
	base := sanitize(goName)
	if minicKeywords[base] {
		base += "_"
	}
	cand := base
	for i := 1; f.used[cand] || f.l.topNames[cand]; i++ {
		cand = fmt.Sprintf("%s_%d", base, i)
	}
	f.used[cand] = true
	if obj != nil {
		f.rename[obj] = cand
	}
	return cand
}

func (f *fnLowerer) record(slot string, write bool, pos token.Pos) {
	sec := -1
	if len(f.secs) > 0 {
		sec = f.secs[len(f.secs)-1]
	}
	f.meta.accesses = append(f.meta.accesses, Access{
		Slot: slot, Write: write, Fn: f.rec.minicName,
		Held: append([]string{}, f.held...), Section: sec, Pos: pos,
	})
}

func (f *fnLowerer) recordCall(callee string, spawn bool, pos token.Pos) {
	f.meta.calls = append(f.meta.calls, Call{
		Caller: f.rec.minicName, Callee: callee,
		Held: append([]string{}, f.held...), Go: spawn, Pos: pos,
	})
}

func docHasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == DirectiveAtomic {
			return true
		}
	}
	return false
}

func (f *fnLowerer) lowerBody() error {
	ret := "void"
	if f.rec.ret != nil {
		ret = f.rec.ret.String()
	}
	var parts []string
	for _, pr := range f.rec.params {
		if pr.wg {
			if pr.obj != nil {
				f.wgLocals[pr.obj] = true
			}
			continue
		}
		nm := f.localFor(pr.obj, pr.name)
		parts = append(parts, pr.mt.String()+" "+nm)
	}
	f.e.emitf(f.declPos, "%s %s(%s) {", ret, f.rec.minicName, strings.Join(parts, ", "))
	f.e.indent++
	var err error
	if f.funcDirective {
		err = f.lowerSpanToEnd("", false, f.body.List, f.declPos)
	} else {
		err = f.blockStmts(f.body.List, true)
	}
	if err != nil {
		return err
	}
	f.e.indent--
	f.e.emit(token.NoPos, "}")
	f.meta.info = &FuncInfo{MinicName: f.rec.minicName, GoName: f.rec.goName, Pos: f.declPos}
	return nil
}

// ---------------------------------------------------------------------------
// Sections

func (f *fnLowerer) openSection(guard string, ro bool, pos token.Pos) {
	sec := &SectionInfo{
		Fn: f.rec.minicName, GoFunc: f.rec.goName,
		Guard: guard, RO: ro,
		Held: append([]string{}, f.held...), Pos: pos,
	}
	sec.MinicLine = f.e.emit(pos, "atomic {")
	f.e.indent++
	f.meta.sections = append(f.meta.sections, sec)
	f.secs = append(f.secs, len(f.meta.sections)-1)
	g := guard
	if g == "" {
		g = AtomicGuard
	}
	f.held = append(f.held, g)
}

func (f *fnLowerer) closeSection() {
	f.e.indent--
	f.e.emit(token.NoPos, "}")
	f.held = f.held[:len(f.held)-1]
	f.secs = f.secs[:len(f.secs)-1]
}

// lowerSpanToEnd lowers stmts as one atomic section reaching the end of the
// function: the Lock-then-defer-Unlock idiom, and whole-function directive
// sections. A trailing `return expr` is split out of the section through a
// temporary (minic forbids return inside atomic).
func (f *fnLowerer) lowerSpanToEnd(guard string, ro bool, stmts []ast.Stmt, pos token.Pos) error {
	var tail *ast.ReturnStmt
	body := stmts
	if len(stmts) > 0 {
		if r, ok := stmts[len(stmts)-1].(*ast.ReturnStmt); ok {
			tail = r
			body = stmts[:len(stmts)-1]
		}
	}
	var retTmp string
	if tail != nil && len(tail.Results) > 1 {
		return errAt(tail.Pos(), "multiple results are outside the subset")
	}
	if tail != nil && len(tail.Results) == 1 {
		if f.rec.ret == nil {
			return errAt(tail.Pos(), "return value in a void function")
		}
		retTmp = f.tmp()
		f.e.emitf(tail.Pos(), "%s %s;", f.rec.ret, retTmp)
	}
	f.openSection(guard, ro, pos)
	if err := f.blockStmts(body, false); err != nil {
		return err
	}
	if retTmp != "" {
		rv, err := f.rvalue(tail.Results[0])
		if err != nil {
			return err
		}
		f.e.emitf(tail.Pos(), "%s = %s;", retTmp, rv)
	}
	f.closeSection()
	if tail != nil {
		if retTmp != "" {
			f.e.emitf(tail.Pos(), "return %s;", retTmp)
		} else {
			f.e.emit(tail.Pos(), "return;")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Mutex / WaitGroup call classification

// syncMethod returns the (method, receiver-selector) when call is a method
// call on a synthesized sync type of the given name.
func (f *fnLowerer) syncMethod(call *ast.CallExpr, typeName ...string) (string, *ast.SelectorExpr, *types.Selection) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, nil
	}
	selection := f.l.info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", nil, nil
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", nil, nil
	}
	// Classify by the method's own receiver (selection.Recv() would be the
	// outer struct for promoted embedded-mutex calls like s.Lock()).
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, nil
	}
	for _, tn := range typeName {
		if isSyncType(sig.Recv().Type(), tn) {
			return obj.Name(), sel, selection
		}
	}
	return "", nil, nil
}

// mutexCall classifies call as a mutex operation. ok=false when it is not a
// mutex method call; err when it is one the subset cannot handle.
func (f *fnLowerer) mutexCall(call *ast.CallExpr) (*mutexOp, bool, error) {
	method, sel, selection := f.syncMethod(call, "Mutex", "RWMutex")
	if method == "" {
		return nil, false, nil
	}
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	case "TryLock", "TryRLock":
		return nil, true, errAt(call.Pos(), "%s is outside the subset (conditional acquisition has no atomic-section equivalent)", method)
	default:
		return nil, true, errAt(call.Pos(), "sync method %s is outside the subset", method)
	}
	guard, err := f.mutexGuard(sel, selection)
	if err != nil {
		return nil, true, err
	}
	return &mutexOp{guard: guard, method: method, pos: call.Pos()}, true, nil
}

// goStructName resolves t (possibly behind pointers) to the Go name of a
// named struct type.
func goStructName(t types.Type) (string, *types.Struct, bool) {
	for {
		p, ok := types.Unalias(t).(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", nil, false
	}
	return named.Obj().Name(), st, true
}

// mutexGuard resolves the declared-guard identity of a mutex method call:
// "mu" for a package-level mutex, "S.mu" for a struct field (instance
// insensitive), "S.Mutex" for a promoted embedded mutex.
func (f *fnLowerer) mutexGuard(sel *ast.SelectorExpr, selection *types.Selection) (string, error) {
	idx := selection.Index()
	if len(idx) >= 2 {
		// Promoted through an embedded mutex: s.Lock().
		sName, st, ok := goStructName(selection.Recv())
		if !ok || idx[0] >= st.NumFields() {
			return "", errAt(sel.Pos(), "cannot resolve the embedded mutex behind this call")
		}
		return sName + "." + st.Field(idx[0]).Name(), nil
	}
	return f.mutexExprGuard(sel.X)
}

func (f *fnLowerer) mutexExprGuard(e ast.Expr) (string, error) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return f.mutexExprGuard(x.X)
	case *ast.Ident:
		obj := f.l.info.Uses[x]
		if g := f.l.globalOf[obj]; g != nil && g.kind == gMutex {
			return obj.Name(), nil
		}
		return "", errAt(x.Pos(), "mutex %s is not a package-level mutex or struct field (local mutexes are outside the subset)", x.Name)
	case *ast.SelectorExpr:
		selection := f.l.info.Selections[x]
		if selection == nil || selection.Kind() != types.FieldVal {
			return "", errAt(x.Pos(), "cannot resolve this mutex to a declared guard")
		}
		sName, _, ok := goStructName(selection.Recv())
		if !ok {
			return "", errAt(x.Pos(), "mutex field receiver is not a named struct")
		}
		return sName + "." + x.Sel.Name, nil
	}
	return "", errAt(e.Pos(), "cannot resolve this mutex expression to a declared guard")
}

// wgCall reports the method name when call is a WaitGroup method call.
func (f *fnLowerer) wgCall(call *ast.CallExpr) (string, bool) {
	method, _, _ := f.syncMethod(call, "WaitGroup")
	return method, method != ""
}

// ---------------------------------------------------------------------------
// Block scanning: directives and lock-span recovery

func (f *fnLowerer) isDeferUnlock(s ast.Stmt, op *mutexOp) bool {
	ds, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	mo, isMutex, err := f.mutexCall(ds.Call)
	return err == nil && isMutex && mo.guard == op.guard && mo.method == op.unlockMethod()
}

func (f *fnLowerer) findUnlock(stmts []ast.Stmt, from int, op *mutexOp) (int, error) {
	want := op.unlockMethod()
	for j := from; j < len(stmts); j++ {
		es, ok := stmts[j].(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		mo, isMutex, err := f.mutexCall(call)
		if err != nil || !isMutex || mo.guard != op.guard {
			continue
		}
		if mo.method == want {
			return j, nil
		}
		if mo.method == op.method {
			return 0, errAt(mo.pos, "mutex %s locked again before being unlocked", op.guard)
		}
		if !mo.isLock() {
			return 0, errAt(mo.pos, "%s() does not match the span opened by %s()", mo.method, op.method)
		}
	}
	return 0, errAt(op.pos, "%s.%s() has no matching %s() in the same block (conditional or cross-block unlocks are outside the subset)", op.guard, op.method, want)
}

func (f *fnLowerer) blockStmts(stmts []ast.Stmt, funcTop bool) error {
	i := 0
	for i < len(stmts) {
		s := stmts[i]
		if f.l.hasDirective(s.Pos()) {
			if err := f.lowerDirectiveStmt(s); err != nil {
				return err
			}
			i++
			continue
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				op, isMutex, err := f.mutexCall(call)
				if err != nil {
					return err
				}
				if isMutex {
					if !op.isLock() {
						return errAt(op.pos, "%s.%s() without a preceding %s() in this block", op.guard, op.method, "Lock")
					}
					if i+1 < len(stmts) && f.isDeferUnlock(stmts[i+1], op) {
						if !funcTop {
							return errAt(op.pos, "the Lock/defer Unlock idiom is only supported at function top level")
						}
						return f.lowerSpanToEnd(op.guard, op.ro(), stmts[i+2:], op.pos)
					}
					j, err := f.findUnlock(stmts, i+1, op)
					if err != nil {
						return err
					}
					// In Go the span shares the enclosing block's scope, but
					// the lowered atomic block opens a new one: pre-declare
					// span locals outside it so later statements can see them.
					if err := f.hoistSpanDecls(stmts[i+1 : j]); err != nil {
						return err
					}
					f.openSection(op.guard, op.ro(), op.pos)
					if err := f.blockStmts(stmts[i+1:j], false); err != nil {
						return err
					}
					f.closeSection()
					i = j + 1
					continue
				}
			}
		}
		if err := f.stmt(s); err != nil {
			return err
		}
		i++
	}
	return nil
}

// hoistSpanDecls pre-declares the variables defined at the top level of a
// recovered lock span, so the declarations survive the atomic block the span
// is lowered into. The in-span definition then becomes a plain assignment.
func (f *fnLowerer) hoistSpanDecls(stmts []ast.Stmt) error {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				continue
			}
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if err := f.hoistLocal(id); err != nil {
					return err
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, nm := range vs.Names {
					if err := f.hoistLocal(nm); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func (f *fnLowerer) hoistLocal(nm *ast.Ident) error {
	if nm.Name == "_" {
		return nil
	}
	obj := f.l.info.Defs[nm]
	if obj == nil {
		return nil // `:=` reusing an outer binding, or unresolved (reported later)
	}
	t := obj.Type()
	if isWaitGroupType(t) || isMutexType(t) {
		return nil // defineLocal classifies (and rejects) these itself
	}
	if srec, isStruct := f.l.structValue(t); isStruct {
		if srec == nil || !srec.ok {
			return nil
		}
		f.pointerized[obj] = true
		name := f.localFor(obj, nm.Name)
		f.e.emitf(nm.Pos(), "%s* %s;", srec.minicName, name)
		f.hoisted[obj] = true
		return nil
	}
	mt, err := f.l.mtypeOf(t)
	if err != nil {
		return nil // defineLocal reports the unsupported type with context
	}
	name := f.localFor(obj, nm.Name)
	f.e.emitf(nm.Pos(), "%s %s;", mt, name)
	f.hoisted[obj] = true
	return nil
}

func (f *fnLowerer) lowerDirectiveStmt(s ast.Stmt) error {
	f.openSection("", false, s.Pos())
	var err error
	if bs, ok := s.(*ast.BlockStmt); ok {
		err = f.blockStmts(bs.List, false)
	} else {
		err = f.stmt(s)
	}
	if err != nil {
		return err
	}
	f.closeSection()
	return nil
}

// ---------------------------------------------------------------------------
// Statements

func (f *fnLowerer) stmt(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.EmptyStmt:
		return nil
	case *ast.BlockStmt:
		f.e.emit(x.Pos(), "{")
		f.e.indent++
		if err := f.blockStmts(x.List, false); err != nil {
			return err
		}
		f.e.indent--
		f.e.emit(token.NoPos, "}")
		return nil
	case *ast.DeclStmt:
		return f.declStmt(x)
	case *ast.AssignStmt:
		return f.assignStmt(x)
	case *ast.IncDecStmt:
		op := "+"
		if x.Tok == token.DEC {
			op = "-"
		}
		return f.compound(x.X, op, "1", x.Pos())
	case *ast.ExprStmt:
		return f.exprStmt(x)
	case *ast.IfStmt:
		return f.ifStmt(x)
	case *ast.ForStmt:
		return f.forStmt(x)
	case *ast.RangeStmt:
		return errAt(x.Pos(), "range loops are outside the subset (use an index loop)")
	case *ast.ReturnStmt:
		return f.returnStmt(x)
	case *ast.GoStmt:
		return f.goStmt(x)
	case *ast.DeferStmt:
		return f.deferStmt(x)
	case *ast.BranchStmt:
		return errAt(x.Pos(), "%s is outside the subset", x.Tok)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return errAt(s.Pos(), "switch is outside the subset (use if/else)")
	case *ast.SelectStmt:
		return errAt(s.Pos(), "select (channels) is outside the subset")
	case *ast.SendStmt:
		return errAt(s.Pos(), "channel send is outside the subset")
	case *ast.LabeledStmt:
		return errAt(s.Pos(), "labels are outside the subset")
	}
	return errAt(s.Pos(), "statement form %T is outside the subset", s)
}

func (f *fnLowerer) declStmt(ds *ast.DeclStmt) error {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return errAt(ds.Pos(), "declaration form is outside the subset")
	}
	switch gd.Tok {
	case token.CONST:
		return nil // uses constant-fold
	case token.TYPE:
		return errAt(gd.Pos(), "local type declarations are outside the subset")
	case token.VAR:
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			if len(vs.Values) != 0 && len(vs.Values) != len(vs.Names) {
				return errAt(vs.Pos(), "multi-value initialization is outside the subset")
			}
			for i, nm := range vs.Names {
				var init ast.Expr
				if len(vs.Values) > 0 {
					init = vs.Values[i]
				}
				if err := f.defineLocal(nm, init); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return errAt(gd.Pos(), "declaration form is outside the subset")
}

func (f *fnLowerer) defineLocal(nm *ast.Ident, init ast.Expr) error {
	if nm.Name == "_" {
		if init != nil {
			_, err := f.rvalue(init)
			return err
		}
		return nil
	}
	obj := f.l.info.Defs[nm]
	if obj == nil {
		return errAt(nm.Pos(), "declaration of %s did not resolve", nm.Name)
	}
	t := obj.Type()
	switch {
	case isWaitGroupType(t):
		if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
			return errAt(nm.Pos(), "local *sync.WaitGroup variables are outside the subset")
		}
		f.wgLocals[obj] = true
		if init != nil {
			if _, ok := f.l.zeroComposite(init); !ok {
				return errAt(init.Pos(), "WaitGroup initializers are outside the subset")
			}
		}
		return nil
	case isMutexType(t):
		return errAt(nm.Pos(), "local mutexes are outside the subset (declare the mutex next to the data it guards)")
	}
	if srec, isStruct := f.l.structValue(t); isStruct {
		if srec == nil || !srec.ok {
			return errAt(nm.Pos(), "variable of a rejected or foreign struct type")
		}
		f.pointerized[obj] = true
		name := f.localFor(obj, nm.Name)
		if cl, ok := init.(*ast.CompositeLit); ok {
			tmp, err := f.compositeText(cl)
			if err != nil {
				return err
			}
			if f.hoisted[obj] {
				f.e.emitf(nm.Pos(), "%s = %s;", name, tmp)
			} else {
				f.e.emitf(nm.Pos(), "%s* %s = %s;", srec.minicName, name, tmp)
			}
			return nil
		}
		if init != nil {
			return errAt(init.Pos(), "struct-value assignment is outside the subset (use pointers or per-field assignment)")
		}
		if f.hoisted[obj] {
			f.e.emitf(nm.Pos(), "%s = new %s;", name, srec.minicName)
		} else {
			f.e.emitf(nm.Pos(), "%s* %s = new %s;", srec.minicName, name, srec.minicName)
		}
		return nil
	}
	mt, err := f.l.mtypeOf(t)
	if err != nil {
		return errAt(nm.Pos(), "%s: %v", nm.Name, err)
	}
	if init == nil || isNilIdent(f.l.info, init) {
		if f.hoisted[obj] {
			return nil // the hoisted declaration already zero-initializes
		}
		name := f.localFor(obj, nm.Name)
		f.e.emitf(nm.Pos(), "%s %s;", mt, name)
		return nil
	}
	rv, err := f.rvalue(init)
	if err != nil {
		return err
	}
	// Claim the name only after lowering the initializer: Go scoping says
	// the initializer sees the outer binding of a shadowed name. (A hoisted
	// span local claimed its name early; localFor is idempotent for it, and
	// the object-keyed rename map keeps shadowed references correct.)
	name := f.localFor(obj, nm.Name)
	if f.hoisted[obj] {
		f.e.emitf(nm.Pos(), "%s = %s;", name, rv)
	} else {
		f.e.emitf(nm.Pos(), "%s %s = %s;", mt, name, rv)
	}
	return nil
}

func (f *fnLowerer) assignStmt(as *ast.AssignStmt) error {
	switch as.Tok {
	case token.DEFINE:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return errAt(as.Pos(), "multi-assignment is outside the subset")
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return errAt(as.Lhs[0].Pos(), ":= target must be an identifier")
		}
		return f.defineLocal(id, as.Rhs[0])
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return errAt(as.Pos(), "multi-assignment is outside the subset")
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
			_, err := f.rvalue(as.Rhs[0])
			return err
		}
		return f.assignTo(as.Lhs[0], as.Rhs[0], as.Pos())
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		ops := map[token.Token]string{
			token.ADD_ASSIGN: "+", token.SUB_ASSIGN: "-", token.MUL_ASSIGN: "*",
			token.QUO_ASSIGN: "/", token.REM_ASSIGN: "%",
		}
		rv, err := f.rvalue(as.Rhs[0])
		if err != nil {
			return err
		}
		return f.compound(as.Lhs[0], ops[as.Tok], rv, as.Pos())
	}
	return errAt(as.Pos(), "assignment operator %s is outside the subset", as.Tok)
}

func (f *fnLowerer) assignTo(lhs, rhs ast.Expr, pos token.Pos) error {
	if lt := f.l.info.Types[lhs].Type; lt != nil {
		if _, isStruct := f.l.structValue(lt); isStruct {
			return errAt(pos, "struct-value assignment is outside the subset (use pointers or per-field assignment)")
		}
	}
	rv, err := f.rvalue(rhs)
	if err != nil {
		return err
	}
	lt, err := f.lvalue(lhs)
	if err != nil {
		return err
	}
	f.e.emitf(pos, "%s = %s;", lt, rv)
	return nil
}

// compound emits lhs = (lhs op rv), recording both the read and the write.
func (f *fnLowerer) compound(lhs ast.Expr, op, rv string, pos token.Pos) error {
	lt, err := f.lvalue(lhs)
	if err != nil {
		return err
	}
	if slot := f.slotOf(lhs); slot != "" {
		f.record(slot, false, lhs.Pos())
	}
	f.e.emitf(pos, "%s = (%s %s %s);", lt, lt, op, rv)
	return nil
}

func (f *fnLowerer) exprStmt(es *ast.ExprStmt) error {
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return errAt(es.Pos(), "expression statements must be calls")
	}
	if op, isMutex, err := f.mutexCall(call); err != nil {
		return err
	} else if isMutex {
		return errAt(op.pos, "%s.%s() here does not form a recoverable lock span", op.guard, op.method)
	}
	if method, isWG := f.wgCall(call); isWG {
		switch method {
		case "Add", "Done":
			return nil // no counterpart: spawns are tracked directly
		case "Wait":
			f.meta.barriers = append(f.meta.barriers, Event{Fn: f.rec.minicName, Pos: call.Pos()})
			return nil
		}
		return errAt(call.Pos(), "WaitGroup method %s is outside the subset", method)
	}
	text, _, err := f.callExpr(call, false)
	if err != nil {
		return err
	}
	f.e.emitf(es.Pos(), "%s;", text)
	return nil
}

func (f *fnLowerer) ifStmt(s *ast.IfStmt) error {
	if s.Init != nil {
		f.e.emit(s.Pos(), "{")
		f.e.indent++
		if err := f.stmt(s.Init); err != nil {
			return err
		}
		err := f.ifNoInit(s)
		f.e.indent--
		f.e.emit(token.NoPos, "}")
		return err
	}
	return f.ifNoInit(s)
}

func (f *fnLowerer) ifNoInit(s *ast.IfStmt) error {
	cond, err := f.rvalue(s.Cond)
	if err != nil {
		return err
	}
	f.e.emitf(s.Pos(), "if (%s) {", cond)
	f.e.indent++
	if err := f.blockStmts(s.Body.List, false); err != nil {
		return err
	}
	f.e.indent--
	switch el := s.Else.(type) {
	case nil:
		f.e.emit(token.NoPos, "}")
	case *ast.BlockStmt:
		f.e.emit(token.NoPos, "} else {")
		f.e.indent++
		if err := f.blockStmts(el.List, false); err != nil {
			return err
		}
		f.e.indent--
		f.e.emit(token.NoPos, "}")
	case *ast.IfStmt:
		f.e.emit(token.NoPos, "} else {")
		f.e.indent++
		if err := f.ifStmt(el); err != nil {
			return err
		}
		f.e.indent--
		f.e.emit(token.NoPos, "}")
	default:
		return errAt(s.Pos(), "else form is outside the subset")
	}
	return nil
}

func (f *fnLowerer) forStmt(s *ast.ForStmt) error {
	f.e.emit(s.Pos(), "{")
	f.e.indent++
	defer func() {
		f.e.indent--
		f.e.emit(token.NoPos, "}")
	}()
	if s.Init != nil {
		if err := f.stmt(s.Init); err != nil {
			return err
		}
	}
	bodyAndPost := func() error {
		if err := f.blockStmts(s.Body.List, false); err != nil {
			return err
		}
		if s.Post != nil {
			return f.stmt(s.Post)
		}
		return nil
	}
	if s.Cond == nil {
		f.e.emit(s.Pos(), "while (1) {")
		f.e.indent++
		if err := bodyAndPost(); err != nil {
			return err
		}
		f.e.indent--
		f.e.emit(token.NoPos, "}")
		return nil
	}
	mark := len(f.e.lines)
	cond, err := f.rvalue(s.Cond)
	if err != nil {
		return err
	}
	if len(f.e.lines) == mark {
		// Pure condition: inline re-evaluation is sound.
		f.e.emitf(s.Pos(), "while (%s) {", cond)
		f.e.indent++
		if err := bodyAndPost(); err != nil {
			return err
		}
		f.e.indent--
		f.e.emit(token.NoPos, "}")
		return nil
	}
	// Impure condition (hoisted calls/composites): evaluate into a flag
	// before the loop and again at the end of each iteration.
	cv := f.tmp()
	f.e.emitf(s.Pos(), "int %s = %s;", cv, cond)
	f.e.emitf(s.Pos(), "while (%s) {", cv)
	f.e.indent++
	if err := bodyAndPost(); err != nil {
		return err
	}
	cond2, err := f.rvalue(s.Cond)
	if err != nil {
		return err
	}
	f.e.emitf(s.Pos(), "%s = %s;", cv, cond2)
	f.e.indent--
	f.e.emit(token.NoPos, "}")
	return nil
}

func (f *fnLowerer) returnStmt(s *ast.ReturnStmt) error {
	if len(f.secs) > 0 {
		return errAt(s.Pos(), "return inside a lock span or atomic section is outside the subset (restructure, or use Lock with defer Unlock at function top level)")
	}
	switch len(s.Results) {
	case 0:
		f.e.emit(s.Pos(), "return;")
		return nil
	case 1:
		rv, err := f.rvalue(s.Results[0])
		if err != nil {
			return err
		}
		f.e.emitf(s.Pos(), "return %s;", rv)
		return nil
	}
	return errAt(s.Pos(), "multiple results are outside the subset")
}

func (f *fnLowerer) deferStmt(s *ast.DeferStmt) error {
	if mo, isMutex, err := f.mutexCall(s.Call); err != nil {
		return err
	} else if isMutex {
		return errAt(s.Pos(), "defer %s.%s() must immediately follow the matching Lock at function top level", mo.guard, mo.method)
	}
	if method, isWG := f.wgCall(s.Call); isWG {
		switch method {
		case "Add", "Done":
			return nil
		case "Wait":
			f.meta.barriers = append(f.meta.barriers, Event{Fn: f.rec.minicName, Pos: s.Pos()})
			return nil
		}
	}
	return errAt(s.Pos(), "defer is outside the subset (only mutex Unlock and WaitGroup methods)")
}

func (f *fnLowerer) goStmt(s *ast.GoStmt) error {
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		return f.liftGoLit(lit, s.Call, s.Pos())
	}
	text, _, err := f.callExpr(s.Call, true)
	if err != nil {
		return err
	}
	f.e.emitf(s.Pos(), "%s;", text)
	return nil
}

// liftGoLit lifts a capture-free goroutine function literal to a top-level
// function and lowers the spawn as a call to it.
func (f *fnLowerer) liftGoLit(lit *ast.FuncLit, call *ast.CallExpr, pos token.Pos) error {
	if err := f.checkCaptures(lit); err != nil {
		return err
	}
	*f.goN++
	rec := &funcRec{
		goName:    fmt.Sprintf("%s.func%d", f.rec.goName, *f.goN),
		minicName: f.l.freshTop(fmt.Sprintf("%s_go%d", f.rec.minicName, *f.goN)),
	}
	if err := f.l.analyzeSignature(lit.Type, rec); err != nil {
		return err
	}
	sub := newFnLowerer(f.l, rec, f.out, f.wgLocals, f.tmpN, f.goN)
	sub.body = lit.Body
	sub.declPos = lit.Pos()
	if err := sub.lowerBody(); err != nil {
		return err
	}
	f.out.lifted = append(f.out.lifted, &loweredFn{rec: rec, e: sub.e, meta: sub.meta})
	args, err := f.callArgs(rec, call.Args)
	if err != nil {
		return err
	}
	f.recordCall(rec.minicName, true, pos)
	f.e.emitf(pos, "%s(%s);", rec.minicName, strings.Join(args, ", "))
	return nil
}

// checkCaptures rejects goroutine literals that capture enclosing locals
// (other than WaitGroups, which are dropped anyway).
func (f *fnLowerer) checkCaptures(lit *ast.FuncLit) error {
	var capErr error
	ast.Inspect(lit, func(n ast.Node) bool {
		if capErr != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.l.info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		if f.l.globalOf[obj] != nil || f.wgLocals[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // the literal's own locals and parameters
		}
		capErr = errAt(id.Pos(), "goroutine literal captures local %s (pass it as an argument)", id.Name)
		return false
	})
	return capErr
}
