package gofront

// The lowering proper: a source-to-source translation from the Go subset
// into minic, plus the sidecar metadata (positions, guards, accesses,
// calls, spawns, barriers). Declarations lower independently; a rejected
// function degrades to an extern prototype so the rest of the package
// still reaches the pipeline.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// minicKeywords are reserved words of the toy language; Go identifiers that
// collide are renamed.
var minicKeywords = map[string]bool{
	"struct": true, "int": true, "void": true, "if": true, "else": true,
	"while": true, "atomic": true, "return": true, "new": true,
	"null": true, "nop": true,
}

// mtype is a minic type: a base ("int" or a struct name) plus pointer depth.
type mtype struct {
	base string
	ptr  int
}

func (t mtype) String() string { return t.base + strings.Repeat("*", t.ptr) }

// posErr is a subset-violation error carrying the offending Go position.
type posErr struct {
	pos token.Pos
	msg string
}

func (e *posErr) Error() string { return e.msg }

func errAt(pos token.Pos, format string, args ...any) error {
	return &posErr{pos: pos, msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Declaration records

type fieldRec struct {
	goName, minicName string
	pos               token.Pos
}

type structRec struct {
	obj       *types.TypeName
	spec      *ast.TypeSpec
	st        *ast.StructType
	minicName string
	ok        bool
	badMsg    string
	badPos    token.Pos
	// fields are the lowered (slot) fields in declaration order; types are
	// resolved during the support fixpoint.
	fields    []*fieldRec
	fieldType map[string]ast.Expr // go field name -> type expr
	fieldMt   map[string]mtype    // resolved during fixpoint
	mutexes   map[string]bool     // go field names that are mutexes (incl. embedded name)
	wgFields  map[string]bool
}

const (
	gSlot = iota
	gMutex
	gWG
	gRejected
)

type globalRec struct {
	obj         types.Object
	spec        *ast.ValueSpec
	init        ast.Expr // nil when none
	minicName   string
	kind        int
	mt          mtype
	pointerized bool // struct-valued var represented as a pointer
}

const (
	fnOK = iota
	fnExtern
	fnAbsent
)

type paramRec struct {
	obj  types.Object // nil for synthetic names
	name string
	mt   mtype
	wg   bool // *sync.WaitGroup parameter: dropped at decl and call sites
}

type funcRec struct {
	obj       types.Object
	decl      *ast.FuncDecl
	minicName string
	goName    string
	hasRecv   bool
	params    []*paramRec // receiver first when hasRecv
	ret       *mtype      // nil = void
	state     int
	rejectMsg string
	rejectPos token.Pos
}

// fnMeta buffers per-declaration sidecar records so a failed lowering can
// discard them wholesale.
type fnMeta struct {
	sections []*SectionInfo // MinicLine relative to the sub-emitter
	accesses []Access
	calls    []Call
	barriers []Event
	info     *FuncInfo
}

type loweredFn struct {
	rec  *funcRec
	e    *emitter
	meta *fnMeta
}

// declOut collects the lowered artifacts of one top-level declaration: the
// function itself plus any lifted goroutine literals.
type declOut struct {
	lifted []*loweredFn
}

// ---------------------------------------------------------------------------
// Package lowerer

type lowerer struct {
	fset  *token.FileSet
	files []*ast.File
	name  string

	info *types.Info
	tpkg *types.Package

	declErr   map[ast.Decl]string     // decl -> first hard type error message
	declErrAt map[ast.Decl]token.Pos  // position of that error
	directive map[string]map[int]bool // filename -> line carrying the directive
	idents    map[string]bool         // every identifier spelled in the package

	structs  []*structRec
	structOf map[*types.TypeName]*structRec
	globals  []*globalRec
	globalOf map[types.Object]*globalRec
	funcs    []*funcRec
	funcOf   map[types.Object]*funcRec

	topNames map[string]bool
	tmpPre   string

	pkg     *Package
	pending []pendingInit
}

type pendingInit struct {
	target string // minic lvalue text
	slot   string // sidecar slot identity ("" = none)
	expr   ast.Expr
	pos    token.Pos
}

func newLowerer(fset *token.FileSet, files []*ast.File, name string) *lowerer {
	return &lowerer{
		fset:      fset,
		files:     files,
		name:      name,
		declErr:   map[ast.Decl]string{},
		declErrAt: map[ast.Decl]token.Pos{},
		directive: map[string]map[int]bool{},
		idents:    map[string]bool{},
		structOf:  map[*types.TypeName]*structRec{},
		globalOf:  map[types.Object]*globalRec{},
		funcOf:    map[types.Object]*funcRec{},
		topNames:  map[string]bool{},
		pkg:       &Package{Name: name, Fset: fset},
	}
}

func (l *lowerer) addErr(decl string, pos token.Pos, msg string) {
	l.pkg.Errors = append(l.pkg.Errors, &DeclError{
		Decl: decl, Pos: l.fset.Position(pos), Msg: msg,
	})
}

func (l *lowerer) lower() (*Package, error) {
	l.scanComments()
	l.pickTmpPrefix()
	var hard []types.Error
	l.info, l.tpkg, hard = typecheck(l.fset, l.files, l.name)
	l.chargeTypeErrors(hard)
	l.collectStructs()
	l.collectGlobals()
	l.collectFuncs()

	main := &emitter{}
	main.emitf(token.NoPos, "// lowered from Go package %q by gofront", l.name)
	l.emitStructs(main)
	l.emitGlobals(main)
	for _, rec := range l.funcs {
		l.lowerFuncDecl(main, rec)
	}
	l.lowerPkgInit(main)
	l.pkg.Minic, l.pkg.LineMap = main.source()
	sort.Strings(l.pkg.Guards)
	return l.pkg, nil
}

// scanComments records directive lines and the set of spelled identifiers
// (used to pick a collision-free temp prefix).
func (l *lowerer) scanComments() {
	for _, f := range l.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == DirectiveAtomic {
					p := l.fset.Position(c.Pos())
					m := l.directive[p.Filename]
					if m == nil {
						m = map[int]bool{}
						l.directive[p.Filename] = m
					}
					m[p.Line] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				l.idents[id.Name] = true
			}
			return true
		})
	}
}

// hasDirective reports whether the line immediately above pos (or pos's own
// line, for a doc comment attached to the node) carries the atomic directive.
func (l *lowerer) hasDirective(pos token.Pos) bool {
	p := l.fset.Position(pos)
	m := l.directive[p.Filename]
	return m != nil && m[p.Line-1]
}

func sanitize(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_x"
	}
	return b.String()
}

// freshTop claims a top-level minic name derived from name.
func (l *lowerer) freshTop(name string) string {
	n := sanitize(name)
	if minicKeywords[n] {
		n += "_"
	}
	cand := n
	for i := 1; l.topNames[cand]; i++ {
		cand = fmt.Sprintf("%s_%d", n, i)
	}
	l.topNames[cand] = true
	return cand
}

// pickTmpPrefix picks a temp-name prefix no package identifier starts with.
func (l *lowerer) pickTmpPrefix() {
	for _, pre := range []string{"_t", "_zt", "_zzt", "_zzzt"} {
		clash := false
		for id := range l.idents {
			if strings.HasPrefix(id, pre) {
				clash = true
				break
			}
		}
		if !clash {
			l.tmpPre = pre
			return
		}
	}
	l.tmpPre = "_zzzzt" // astronomically unlikely to clash four levels deep
}

// chargeTypeErrors maps each hard type error to its enclosing top-level
// declaration so the rest of the package still lowers.
func (l *lowerer) chargeTypeErrors(hard []types.Error) {
	for _, te := range hard {
		var owner ast.Decl
		for _, f := range l.files {
			for _, d := range f.Decls {
				if d.Pos() <= te.Pos && te.Pos <= d.End() {
					owner = d
					break
				}
			}
			if owner != nil {
				break
			}
		}
		if owner == nil {
			l.addErr("package", te.Pos, "type error: "+te.Msg)
			continue
		}
		if _, seen := l.declErr[owner]; !seen {
			l.declErr[owner] = "type error: " + te.Msg
			l.declErrAt[owner] = te.Pos
		}
	}
}

// ---------------------------------------------------------------------------
// Type mapping

func (l *lowerer) structValue(t types.Type) (*structRec, bool) {
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	return l.structOf[named.Obj()], true
}

func intKind(b *types.Basic) bool {
	switch b.Kind() {
	case types.Bool, types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64,
		types.Uintptr, types.UntypedBool, types.UntypedInt, types.UntypedRune:
		return true
	}
	return false
}

// mtypeOf maps a Go type into the minic type system.
func (l *lowerer) mtypeOf(t types.Type) (mtype, error) {
	t = types.Unalias(t)
	switch u := t.(type) {
	case *types.Basic:
		if intKind(u) {
			return mtype{base: "int"}, nil
		}
		return mtype{}, fmt.Errorf("type %s is outside the subset (only integer kinds and bool lower)", u)
	case *types.Named:
		if isMutexType(u) || isWaitGroupType(u) {
			return mtype{}, fmt.Errorf("sync.%s is not a data type in the subset", u.Obj().Name())
		}
		switch un := u.Underlying().(type) {
		case *types.Basic:
			if intKind(un) {
				return mtype{base: "int"}, nil
			}
			return mtype{}, fmt.Errorf("type %s is outside the subset", u)
		case *types.Struct:
			rec := l.structOf[u.Obj()]
			if rec == nil {
				return mtype{}, fmt.Errorf("struct type %s is not declared in this package", u.Obj().Name())
			}
			if !rec.ok {
				return mtype{}, fmt.Errorf("struct type %s was rejected (%s)", u.Obj().Name(), rec.badMsg)
			}
			return mtype{base: rec.minicName}, nil
		default:
			return mtype{}, fmt.Errorf("type %s is outside the subset", u)
		}
	case *types.Pointer:
		inner, err := l.mtypeOf(u.Elem())
		if err != nil {
			return mtype{}, err
		}
		return mtype{base: inner.base, ptr: inner.ptr + 1}, nil
	case *types.Slice:
		if _, isStruct := l.structValue(u.Elem()); isStruct {
			return mtype{}, fmt.Errorf("slice of struct values is outside the subset (use a slice of pointers)")
		}
		inner, err := l.mtypeOf(u.Elem())
		if err != nil {
			return mtype{}, err
		}
		return mtype{base: inner.base, ptr: inner.ptr + 1}, nil
	case *types.Array:
		return mtype{}, fmt.Errorf("fixed-size arrays are outside the subset (use a slice)")
	case *types.Chan:
		return mtype{}, fmt.Errorf("channels are outside the subset")
	case *types.Map:
		return mtype{}, fmt.Errorf("maps are outside the subset")
	case *types.Interface:
		return mtype{}, fmt.Errorf("interfaces are outside the subset")
	case *types.Signature:
		return mtype{}, fmt.Errorf("function values are outside the subset")
	}
	return mtype{}, fmt.Errorf("type %s is outside the subset", t)
}

// ---------------------------------------------------------------------------
// Declaration collection

func (l *lowerer) collectStructs() {
	for _, f := range l.files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				obj, _ := l.info.Defs[ts.Name].(*types.TypeName)
				st, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					// Named integer kinds are fine (they lower to int);
					// anything else is out of subset.
					if obj != nil {
						if b, ok := types.Unalias(obj.Type()).Underlying().(*types.Basic); ok && intKind(b) {
							continue
						}
					}
					l.addErr("type "+ts.Name.Name, ts.Pos(), "only struct types and integer-kind named types are in the subset")
					continue
				}
				if obj == nil {
					l.addErr("type "+ts.Name.Name, ts.Pos(), "type did not resolve")
					continue
				}
				rec := &structRec{
					obj: obj, spec: ts, st: st,
					minicName: l.freshTop(ts.Name.Name),
					ok:        true,
					fieldType: map[string]ast.Expr{},
					fieldMt:   map[string]mtype{},
					mutexes:   map[string]bool{},
					wgFields:  map[string]bool{},
				}
				if msg, at := l.declErr[d], l.declErrAt[d]; msg != "" {
					rec.ok, rec.badMsg, rec.badPos = false, msg, at
				}
				l.structs = append(l.structs, rec)
				l.structOf[obj] = rec
			}
		}
	}
	// First pass over fields: classify mutexes/waitgroups/slots.
	for _, rec := range l.structs {
		if !rec.ok {
			continue
		}
		usedField := map[string]bool{}
		for _, fld := range rec.st.Fields.List {
			ft := l.info.Types[fld.Type].Type
			if len(fld.Names) == 0 { // embedded
				if ft != nil && isMutexType(ft) {
					name := "Mutex"
					if isSyncType(ft, "RWMutex") {
						name = "RWMutex"
					}
					rec.mutexes[name] = true
					continue
				}
				rec.ok = false
				rec.badMsg = "embedded fields other than sync.Mutex/RWMutex are outside the subset"
				rec.badPos = fld.Pos()
				break
			}
			for _, nm := range fld.Names {
				switch {
				case ft != nil && isMutexType(ft):
					rec.mutexes[nm.Name] = true
				case ft != nil && isWaitGroupType(ft):
					rec.wgFields[nm.Name] = true
				default:
					mn := sanitize(nm.Name)
					if minicKeywords[mn] {
						mn += "_"
					}
					for i := 1; usedField[mn]; i++ {
						mn = fmt.Sprintf("%s_%d", sanitize(nm.Name), i)
					}
					usedField[mn] = true
					rec.fields = append(rec.fields, &fieldRec{goName: nm.Name, minicName: mn, pos: nm.Pos()})
					rec.fieldType[nm.Name] = fld.Type
				}
			}
			if !rec.ok {
				break
			}
		}
	}
	// Fixpoint: resolve slot field types; a field of a rejected struct type
	// rejects its owner, which can cascade.
	for changed := true; changed; {
		changed = false
		for _, rec := range l.structs {
			if !rec.ok {
				continue
			}
			for _, fr := range rec.fields {
				te := rec.fieldType[fr.goName]
				ft := l.info.Types[te].Type
				if ft == nil {
					rec.ok, rec.badMsg, rec.badPos = false, "field type did not resolve", fr.pos
					changed = true
					break
				}
				if _, isStruct := l.structValue(ft); isStruct {
					rec.ok, rec.badMsg, rec.badPos = false,
						fmt.Sprintf("struct-valued field %s is outside the subset (use a pointer)", fr.goName), fr.pos
					changed = true
					break
				}
				mt, err := l.mtypeOf(ft)
				if err != nil {
					rec.ok, rec.badMsg, rec.badPos = false, fmt.Sprintf("field %s: %v", fr.goName, err), fr.pos
					changed = true
					break
				}
				rec.fieldMt[fr.goName] = mt
			}
		}
	}
	for _, rec := range l.structs {
		if !rec.ok {
			l.addErr("type "+rec.obj.Name(), rec.badPos, rec.badMsg)
			continue
		}
		for m := range rec.mutexes {
			l.addGuard(rec.obj.Name() + "." + m)
		}
	}
}

func (l *lowerer) addGuard(id string) {
	for _, g := range l.pkg.Guards {
		if g == id {
			return
		}
	}
	l.pkg.Guards = append(l.pkg.Guards, id)
}

func (l *lowerer) collectGlobals() {
	for _, f := range l.files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			declMsg, declAt := l.declErr[d], l.declErrAt[d]
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				if len(vs.Values) != 0 && len(vs.Values) != len(vs.Names) {
					for _, nm := range vs.Names {
						l.rejectGlobal(nm, vs, "multi-value initialization is outside the subset")
					}
					continue
				}
				for i, nm := range vs.Names {
					var init ast.Expr
					if len(vs.Values) > 0 {
						init = vs.Values[i]
					}
					if declMsg != "" {
						l.rejectGlobalAt(nm, vs, declMsg, declAt)
						continue
					}
					l.collectGlobal(nm, vs, init)
				}
			}
		}
	}
}

func (l *lowerer) rejectGlobal(nm *ast.Ident, vs *ast.ValueSpec, msg string) {
	l.rejectGlobalAt(nm, vs, msg, nm.Pos())
}

func (l *lowerer) rejectGlobalAt(nm *ast.Ident, vs *ast.ValueSpec, msg string, at token.Pos) {
	l.addErr("var "+nm.Name, at, msg)
	if obj := l.info.Defs[nm]; obj != nil {
		rec := &globalRec{obj: obj, spec: vs, kind: gRejected}
		l.globals = append(l.globals, rec)
		l.globalOf[obj] = rec
	}
}

func (l *lowerer) collectGlobal(nm *ast.Ident, vs *ast.ValueSpec, init ast.Expr) {
	obj := l.info.Defs[nm]
	if obj == nil {
		l.rejectGlobal(nm, vs, "declaration did not resolve")
		return
	}
	t := obj.Type()
	rec := &globalRec{obj: obj, spec: vs, init: init}
	switch {
	case isMutexType(t):
		rec.kind = gMutex
		l.addGuard(nm.Name)
	case isWaitGroupType(t):
		rec.kind = gWG
	default:
		if srec, isStruct := l.structValue(t); isStruct {
			if srec == nil || !srec.ok {
				l.rejectGlobal(nm, vs, "variable of a rejected or foreign struct type")
				return
			}
			rec.kind = gSlot
			rec.pointerized = true
			rec.mt = mtype{base: srec.minicName, ptr: 1}
			rec.minicName = l.freshTop(nm.Name)
			break
		}
		mt, err := l.mtypeOf(t)
		if err != nil {
			l.rejectGlobal(nm, vs, err.Error())
			return
		}
		rec.kind = gSlot
		rec.mt = mt
		rec.minicName = l.freshTop(nm.Name)
	}
	l.globals = append(l.globals, rec)
	l.globalOf[obj] = rec
}

func (l *lowerer) collectFuncs() {
	for _, f := range l.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			rec := l.analyzeFunc(fd)
			l.funcs = append(l.funcs, rec)
			if rec.obj != nil {
				l.funcOf[rec.obj] = rec
			}
		}
	}
}

func (l *lowerer) analyzeFunc(fd *ast.FuncDecl) *funcRec {
	rec := &funcRec{decl: fd, goName: fd.Name.Name}
	rec.obj = l.info.Defs[fd.Name]
	absent := func(pos token.Pos, format string, args ...any) *funcRec {
		rec.state = fnAbsent
		rec.rejectMsg = fmt.Sprintf(format, args...)
		rec.rejectPos = pos
		return rec
	}
	if rec.obj == nil {
		return absent(fd.Pos(), "declaration did not resolve")
	}
	// Receiver.
	if fd.Recv != nil {
		fld := fd.Recv.List[0]
		rt := l.info.Types[fld.Type].Type
		ptr, isPtr := types.Unalias(rt).(*types.Pointer)
		if !isPtr {
			return absent(fld.Pos(), "value receivers are outside the subset (use a pointer receiver)")
		}
		srec, isStruct := l.structValue(ptr.Elem())
		if !isStruct || srec == nil || !srec.ok {
			return absent(fld.Pos(), "methods are only supported on pointers to accepted struct types")
		}
		rec.goName = fmt.Sprintf("(*%s).%s", srec.obj.Name(), fd.Name.Name)
		rec.hasRecv = true
		name := "self"
		var robj types.Object
		if len(fld.Names) == 1 && fld.Names[0].Name != "_" {
			name = fld.Names[0].Name
			robj = l.info.Defs[fld.Names[0]]
		}
		rec.params = append(rec.params, &paramRec{obj: robj, name: name, mt: mtype{base: srec.minicName, ptr: 1}})
		rec.minicName = l.freshTop(srec.obj.Name() + "_" + fd.Name.Name)
	} else {
		rec.minicName = l.freshTop(fd.Name.Name)
	}
	if err := l.analyzeSignature(fd.Type, rec); err != nil {
		pos := fd.Pos()
		if pe, ok := err.(*posErr); ok {
			pos = pe.pos
		}
		return absent(pos, "%s", err.Error())
	}
	if fd.Body == nil {
		rec.state = fnExtern
		rec.rejectMsg = "function has no body"
		rec.rejectPos = fd.Pos()
	}
	return rec
}

// analyzeSignature checks parameters and results of a function type against
// the subset, appending parameter records to rec (after any receiver).
func (l *lowerer) analyzeSignature(ft *ast.FuncType, rec *funcRec) error {
	for _, fld := range ft.Params.List {
		pt := l.info.Types[fld.Type].Type
		names := fld.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil}
		}
		for _, nm := range names {
			pr := &paramRec{name: "_arg"}
			if nm != nil && nm.Name != "_" {
				pr.name = nm.Name
				pr.obj = l.info.Defs[nm]
			}
			switch {
			case pt == nil:
				return errAt(fld.Pos(), "parameter type did not resolve")
			case isWaitGroupType(pt):
				if _, isPtr := types.Unalias(pt).(*types.Pointer); !isPtr {
					return errAt(fld.Pos(), "sync.WaitGroup must be passed by pointer")
				}
				pr.wg = true
			case isMutexType(pt):
				return errAt(fld.Pos(), "mutex parameters are outside the subset (declare the mutex where the data lives)")
			default:
				if _, isEllipsis := fld.Type.(*ast.Ellipsis); isEllipsis {
					return errAt(fld.Pos(), "variadic functions are outside the subset")
				}
				if _, isStruct := l.structValue(pt); isStruct {
					return errAt(fld.Pos(), "struct-valued parameters are outside the subset (pass a pointer)")
				}
				mt, err := l.mtypeOf(pt)
				if err != nil {
					return errAt(fld.Pos(), "parameter %s: %v", pr.name, err)
				}
				pr.mt = mt
			}
			rec.params = append(rec.params, pr)
		}
	}
	if ft.Results != nil && len(ft.Results.List) > 0 {
		if len(ft.Results.List) > 1 || len(ft.Results.List[0].Names) > 1 {
			return errAt(ft.Results.Pos(), "multiple results are outside the subset")
		}
		if len(ft.Results.List[0].Names) == 1 {
			return errAt(ft.Results.Pos(), "named results are outside the subset")
		}
		rt := l.info.Types[ft.Results.List[0].Type].Type
		if rt == nil {
			return errAt(ft.Results.Pos(), "result type did not resolve")
		}
		if _, isStruct := l.structValue(rt); isStruct {
			return errAt(ft.Results.Pos(), "struct-valued results are outside the subset (return a pointer)")
		}
		mt, err := l.mtypeOf(rt)
		if err != nil {
			return errAt(ft.Results.Pos(), "result: %v", err)
		}
		rec.ret = &mt
	}
	return nil
}

// ---------------------------------------------------------------------------
// Function emission

func (l *lowerer) emitExtern(main *emitter, rec *funcRec) {
	ret := "void"
	if rec.ret != nil {
		ret = rec.ret.String()
	}
	var parts []string
	n := 0
	for _, pr := range rec.params {
		if pr.wg {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s a%d", pr.mt, n))
		n++
	}
	pos := token.NoPos
	if rec.decl != nil {
		pos = rec.decl.Pos()
	}
	main.emitf(pos, "%s %s(%s);", ret, rec.minicName, strings.Join(parts, ", "))
}

func (l *lowerer) lowerFuncDecl(main *emitter, rec *funcRec) {
	if rec.state == fnAbsent {
		l.addErr("func "+rec.goName, rec.rejectPos, rec.rejectMsg)
		return
	}
	if msg, charged := l.declErr[ast.Decl(rec.decl)]; charged {
		l.addErr("func "+rec.goName, l.declErrAt[rec.decl], msg)
		rec.state = fnExtern
		l.emitExtern(main, rec)
		return
	}
	if rec.state == fnExtern { // bodyless declaration
		l.emitExtern(main, rec)
		return
	}
	out := &declOut{}
	tmpN, goN := 0, 0
	fl := newFnLowerer(l, rec, out, nil, &tmpN, &goN)
	fl.body = rec.decl.Body
	fl.declPos = rec.decl.Pos()
	fl.funcDirective = l.hasDirective(rec.decl.Pos()) || docHasDirective(rec.decl.Doc)
	if err := fl.lowerBody(); err != nil {
		pos := rec.decl.Pos()
		if pe, ok := err.(*posErr); ok {
			pos = pe.pos
		}
		l.addErr("func "+rec.goName, pos, err.Error())
		rec.state = fnExtern
		rec.rejectMsg = err.Error()
		rec.rejectPos = pos
		l.emitExtern(main, rec)
		return
	}
	l.registerLowered(main, &loweredFn{rec: rec, e: fl.e, meta: fl.meta})
	for _, lf := range out.lifted {
		l.registerLowered(main, lf)
	}
}

// registerLowered splices one lowered function into the main emitter and
// rebases its sidecar records (section lines and ids) into the package.
func (l *lowerer) registerLowered(main *emitter, lf *loweredFn) {
	offset := main.splice(lf.e)
	base := len(l.pkg.Sections)
	for _, sec := range lf.meta.sections {
		sec.MinicLine += offset
		sec.ID = len(l.pkg.Sections)
		l.pkg.Sections = append(l.pkg.Sections, sec)
	}
	for i := range lf.meta.accesses {
		if lf.meta.accesses[i].Section >= 0 {
			lf.meta.accesses[i].Section += base
		}
	}
	l.pkg.Accesses = append(l.pkg.Accesses, lf.meta.accesses...)
	l.pkg.Calls = append(l.pkg.Calls, lf.meta.calls...)
	l.pkg.Barriers = append(l.pkg.Barriers, lf.meta.barriers...)
	if lf.meta.info != nil {
		l.pkg.Funcs = append(l.pkg.Funcs, lf.meta.info)
	}
}

// lowerPkgInit emits the synthesized function holding the package-level
// initializers that could not be expressed inline. It is never called from
// lowered code: its accesses happen before any goroutine exists, and the
// diagnostic pass exempts them via Package.InitFn.
func (l *lowerer) lowerPkgInit(main *emitter) {
	if len(l.pending) == 0 {
		return
	}
	name := l.freshTop("lockinfer_pkginit")
	rec := &funcRec{minicName: name, goName: "package initializer"}
	tmpN, goN := 0, 0
	fl := newFnLowerer(l, rec, &declOut{}, nil, &tmpN, &goN)
	fl.e.emitf(l.pending[0].pos, "void %s() {", name)
	fl.e.indent++
	for _, pi := range l.pending {
		rv, err := fl.rvalue(pi.expr)
		if err != nil {
			pos := pi.pos
			if pe, ok := err.(*posErr); ok {
				pos = pe.pos
			}
			l.addErr("var "+pi.slot, pos, "initializer: "+err.Error())
			continue
		}
		fl.e.emitf(pi.pos, "%s = %s;", pi.target, rv)
		if pi.slot != "" {
			fl.record(pi.slot, true, pi.pos)
		}
	}
	fl.e.indent--
	fl.e.emit(token.NoPos, "}")
	fl.meta.info = &FuncInfo{MinicName: name, GoName: "package initializer", Pos: l.pending[0].pos}
	l.registerLowered(main, &loweredFn{rec: rec, e: fl.e, meta: fl.meta})
	l.pkg.InitFn = name
}

// ---------------------------------------------------------------------------
// Emission

func (l *lowerer) emitStructs(e *emitter) {
	for _, rec := range l.structs {
		if !rec.ok {
			continue
		}
		e.emitf(rec.spec.Pos(), "struct %s {", rec.minicName)
		e.indent++
		for _, fr := range rec.fields {
			e.emitf(fr.pos, "%s %s;", rec.fieldMt[fr.goName], fr.minicName)
		}
		e.indent--
		e.emit(token.NoPos, "}")
	}
}

// constText renders a constant-folded expression, when it is one.
func (l *lowerer) constText(e ast.Expr) (string, bool) {
	tv, ok := l.info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	switch tv.Value.Kind() {
	case constant.Int:
		v, exact := constant.Int64Val(tv.Value)
		if !exact {
			return "", false
		}
		if v < 0 {
			return fmt.Sprintf("(0 - %d)", -v), true
		}
		return fmt.Sprintf("%d", v), true
	case constant.Bool:
		if constant.BoolVal(tv.Value) {
			return "1", true
		}
		return "0", true
	}
	return "", false
}

// zeroComposite reports whether e is an empty composite literal (S{}, &S{})
// or new(S) of a supported struct, returning the struct rec.
func (l *lowerer) zeroComposite(e ast.Expr) (*structRec, bool) {
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return l.zeroComposite(x.X)
		}
	case *ast.CompositeLit:
		if len(x.Elts) != 0 {
			return nil, false
		}
		if rec, ok := l.structValue(l.info.Types[x].Type); ok && rec != nil && rec.ok {
			return rec, true
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := l.info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) == 1 {
				if rec, ok := l.structValue(l.info.Types[x.Args[0]].Type); ok && rec != nil && rec.ok {
					return rec, true
				}
			}
		}
	}
	return nil, false
}

func (l *lowerer) emitGlobals(e *emitter) {
	for _, rec := range l.globals {
		if rec.kind != gSlot {
			continue
		}
		nm := rec.obj.Name()
		pos := rec.obj.Pos()
		if rec.pointerized {
			// var c Counter  =>  Counter* c = new Counter;
			e.emitf(pos, "%s %s = new %s;", rec.mt, rec.minicName, rec.mt.base)
			if cl, ok := rec.init.(*ast.CompositeLit); ok {
				if err := l.queueCompositeInit(rec, cl); err != nil {
					l.demoteGlobal(rec, err)
				}
			} else if rec.init != nil {
				l.demoteGlobal(rec, errAt(rec.init.Pos(), "struct-valued initializer must be a composite literal"))
			}
			continue
		}
		switch {
		case rec.init == nil:
			e.emitf(pos, "%s %s;", rec.mt, rec.minicName)
		default:
			if txt, ok := l.constText(rec.init); ok {
				e.emitf(pos, "%s %s = %s;", rec.mt, rec.minicName, txt)
				continue
			}
			if srec, ok := l.zeroComposite(rec.init); ok && rec.mt.ptr == 1 && rec.mt.base == srec.minicName {
				e.emitf(pos, "%s %s = new %s;", rec.mt, rec.minicName, srec.minicName)
				continue
			}
			if isNilIdent(l.info, rec.init) {
				e.emitf(pos, "%s %s;", rec.mt, rec.minicName)
				continue
			}
			// Composite literal with elements, make(), arithmetic over other
			// globals, calls: defer to the synthesized init function.
			e.emitf(pos, "%s %s;", rec.mt, rec.minicName)
			l.pending = append(l.pending, pendingInit{
				target: rec.minicName, slot: nm, expr: rec.init, pos: rec.init.Pos(),
			})
		}
	}
}

// queueCompositeInit schedules `g = S{f: v, ...}` field writes for the
// synthesized init function.
func (l *lowerer) queueCompositeInit(rec *globalRec, cl *ast.CompositeLit) error {
	srec, _ := l.structValue(l.info.Types[cl].Type)
	if srec == nil {
		return errAt(cl.Pos(), "composite literal type is outside the subset")
	}
	for i, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		var goField string
		var val ast.Expr
		if ok {
			key, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				return errAt(kv.Pos(), "non-identifier composite keys are outside the subset")
			}
			goField, val = key.Name, kv.Value
		} else {
			// Positional: map to the i-th declared Go field (mutex/wg fields
			// make positions ambiguous; require keys then).
			if len(srec.mutexes) > 0 || len(srec.wgFields) > 0 || i >= len(srec.fields) {
				return errAt(elt.Pos(), "positional composite literals are only supported for structs without sync fields")
			}
			goField, val = srec.fields[i].goName, elt
		}
		if srec.mutexes[goField] || srec.wgFields[goField] {
			return errAt(elt.Pos(), "sync fields cannot be initialized in a composite literal")
		}
		fr := srec.fieldByGo(goField)
		if fr == nil {
			return errAt(elt.Pos(), "unknown field %s in composite literal", goField)
		}
		l.pending = append(l.pending, pendingInit{
			target: fmt.Sprintf("%s->%s", rec.minicName, fr.minicName),
			slot:   srec.obj.Name() + "." + goField,
			expr:   val, pos: val.Pos(),
		})
	}
	return nil
}

func (r *structRec) fieldByGo(name string) *fieldRec {
	for _, fr := range r.fields {
		if fr.goName == name {
			return fr
		}
	}
	return nil
}

// demoteGlobal marks a global as rejected after its decl line was already
// emitted (the decl stays; only the unsupported initializer is dropped).
func (l *lowerer) demoteGlobal(rec *globalRec, err error) {
	pos := rec.obj.Pos()
	if pe, ok := err.(*posErr); ok {
		pos = pe.pos
	}
	l.addErr("var "+rec.obj.Name(), pos, err.Error())
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
