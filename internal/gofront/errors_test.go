package gofront

// Error-path coverage: the frontend's contract is that subset violations
// surface as positioned per-declaration errors while the rest of the
// package still lowers. These tests pin the rejection messages and the
// multi-file entry points (LowerDir, LowerFiles).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lowerErrs lowers a source expected to produce decl errors and returns
// them joined, failing the test on a hard (package-level) error.
func lowerErrs(t *testing.T, src string) (*Package, string) {
	t.Helper()
	pkg, err := LowerSource("test.go", src)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	var msgs []string
	for _, e := range pkg.Errors {
		msgs = append(msgs, e.Error())
	}
	return pkg, strings.Join(msgs, "\n")
}

func TestDeclErrorString(t *testing.T) {
	pkg, _ := lowerErrs(t, `package p

func f() {
	goto done
done:
}
`)
	if len(pkg.Errors) == 0 {
		t.Fatal("expected a decl error for goto")
	}
	e := pkg.Errors[0]
	s := e.Error()
	if !strings.Contains(s, e.Decl) || !strings.Contains(s, e.Msg) {
		t.Errorf("Error() = %q, want it to carry decl %q and msg %q", s, e.Decl, e.Msg)
	}
	if !strings.Contains(s, "test.go") {
		t.Errorf("Error() = %q, want a test.go position prefix", s)
	}
}

// TestStatementRejections sweeps the statement forms outside the subset:
// each variant produces a positioned error mentioning the construct, and
// the error is charged to the declaring function.
func TestStatementRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"range", `for range s { x++ }`, "range loops"},
		{"break", `for { break }`, "break is outside"},
		{"continue", `for { continue }`, "continue is outside"},
		{"switch", `switch x { default: }`, "switch is outside"},
		{"select", `select {}`, "select (channels)"},
		{"label", `L: x = 1; _ = x`, "labels are outside"},
		{"localType", `type T int; var v T; _ = v`, "local type declarations"},
		{"returnInSpan", `mu.Lock(); if x > 0 { return }; mu.Unlock()`, "return inside a lock span"},
		{"deferMisplaced", `x = 1; defer mu.Unlock()`, "must immediately follow the matching Lock"},
		{"deferArbitrary", `defer g()`, "defer is outside the subset"},
		{"bitwiseNot", `x = ^x`, "operator ^ is outside"},
		{"addressOfSync", `_ = &mu`, "address of a sync object"},
		{"slicing", `s = s[1:2]`, "slicing is outside"},
		{"makeMap", `_ = make(map[int]int)`, "make is only supported for slices"},
		{"builtinMin", `x = min(x, 1)`, "builtin min is outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `package p

import "sync"

var mu sync.Mutex
var x int
var s []int

func g() {}

func f() {
	` + tc.body + `
}
`
			pkg, msgs := lowerErrs(t, src)
			if len(pkg.Errors) == 0 {
				t.Fatalf("no decl error; minic:\n%s", pkg.Minic)
			}
			if !strings.Contains(msgs, tc.want) {
				t.Errorf("errors do not mention %q:\n%s", tc.want, msgs)
			}
			found := false
			for _, e := range pkg.Errors {
				if strings.Contains(e.Decl, "f") {
					found = true
					if e.Pos.Line == 0 {
						t.Errorf("error has no position: %v", e)
					}
				}
			}
			if !found {
				t.Errorf("no error charged to func f:\n%s", msgs)
			}
		})
	}
}

// TestGlobalRejections covers the global-collection error paths: rejected
// initializers and composite-literal restrictions around sync fields. The
// surviving declarations still lower.
func TestGlobalRejections(t *testing.T) {
	cases := []struct {
		name, decls, want string
	}{
		{"map", `var m map[string]int`, "var m"},
		{"positionalSync", `var c = Counter{sync.Mutex{}, 5}`, "positional composite literals"},
		{"syncFieldInit", `var c = Counter{mu: sync.Mutex{}}`, "sync fields cannot be initialized"},
		{"nonCompositeStructInit", `var c = other
var other Counter`, "must be a composite literal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `package p

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

` + tc.decls + `

var ok int

func f() {
	ok = 1
}
`
			pkg, msgs := lowerErrs(t, src)
			if len(pkg.Errors) == 0 {
				t.Fatalf("no decl error; minic:\n%s", pkg.Minic)
			}
			if !strings.Contains(msgs, tc.want) {
				t.Errorf("errors do not mention %q:\n%s", tc.want, msgs)
			}
			if len(pkg.Funcs) != 1 || pkg.Funcs[0].GoName != "f" {
				t.Errorf("func f did not survive the rejected global: %v", pkg.Funcs)
			}
		})
	}
}

// TestStructValueRejections covers lvalue/rvalue struct-value paths: the
// subset passes structs by pointer only.
func TestStructValueRejections(t *testing.T) {
	_, msgs := lowerErrs(t, `package p

type S struct{ n int }

func f(p *S, q *S) {
	*p = *q
}
`)
	if !strings.Contains(msgs, "struct-value assignment") {
		t.Errorf("errors do not mention struct-value assignment:\n%s", msgs)
	}
}

func TestLowerDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\n\nvar x int\n")
	write("b.go", "package p\n\nfunc f() { x = 1 }\n")
	write("b_test.go", "package p\n\nfunc broken() { <-make(chan int) }\n")
	write("notes.txt", "not go")

	pkg, err := LowerDir(dir)
	if err != nil {
		t.Fatalf("LowerDir: %v", err)
	}
	if len(pkg.Errors) != 0 {
		t.Errorf("unexpected errors (test file not skipped?): %v", pkg.Errors)
	}
	if len(pkg.Funcs) != 1 || pkg.Funcs[0].GoName != "f" {
		t.Errorf("funcs = %v, want [f]", pkg.Funcs)
	}
	if !strings.Contains(pkg.Minic, "int x;") {
		t.Errorf("global from a.go missing:\n%s", pkg.Minic)
	}
}

func TestLowerDirErrors(t *testing.T) {
	if _, err := LowerDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LowerDir on a missing directory succeeded")
	}
	empty := t.TempDir()
	if _, err := LowerDir(empty); err == nil || !strings.Contains(err.Error(), "no .go files") {
		t.Errorf("LowerDir on an empty directory: err = %v, want no .go files", err)
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "a.go"), []byte("package p\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LowerDir(bad); err == nil {
		t.Error("LowerDir on a syntax error succeeded")
	}
}

func TestLowerFilesErrors(t *testing.T) {
	if _, err := LowerFiles(token.NewFileSet(), nil); err == nil || !strings.Contains(err.Error(), "no files") {
		t.Errorf("LowerFiles with no files: err = %v", err)
	}

	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		t.Helper()
		f, err := parser.ParseFile(fset, name, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a := parse("a.go", "package p\n")
	b := parse("b.go", "package q\n")
	if _, err := LowerFiles(fset, []*ast.File{a, b}); err == nil || !strings.Contains(err.Error(), "mixed package names") {
		t.Errorf("LowerFiles with mixed packages: err = %v", err)
	}
}

func TestLowerSourceSyntaxError(t *testing.T) {
	if _, err := LowerSource("", "package p\nfunc {"); err == nil {
		t.Error("LowerSource on a syntax error succeeded")
	}
}

// TestLocalRejections covers defineLocal's refusal set: sync objects and
// struct values must live where the subset can see them.
func TestLocalRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"localMutex", `var m sync.Mutex; m.Lock(); m.Unlock()`, "local mutexes are outside"},
		{"wgPointer", `var w *sync.WaitGroup; _ = w`, "local *sync.WaitGroup"},
		{"funcLit", `h := func() {}; h()`, "function values are outside"},
		{"andNot", `x = x &^ 1`, "operator &^ is outside"},
		{"structValueCopy", `var p Pair; var q Pair; q = p; _ = q`, "struct-value assignment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `package p

import "sync"

type Pair struct{ a, b int }

var x int

var _ = sync.OnceFunc

func f() {
	` + tc.body + `
}
`
			pkg, msgs := lowerErrs(t, src)
			if len(pkg.Errors) == 0 {
				t.Fatalf("no decl error; minic:\n%s", pkg.Minic)
			}
			if !strings.Contains(msgs, tc.want) {
				t.Errorf("errors do not mention %q:\n%s", tc.want, msgs)
			}
		})
	}
}

// TestLoweringKitchenSink drives the supported statement and expression
// forms that the focused tests above skip: if with init and else-if
// chains, impure loop conditions (hoisted calls re-evaluated per
// iteration), local struct values behind pointers, element reads and
// writes, and pointer dereference.
func TestLoweringKitchenSink(t *testing.T) {
	pkg := lowerOK(t, `package p

var arr []int
var total int

func g(n int) int {
	return n - 1
}

func f(n int) int {
	q := Pair{a: 1, b: 2}
	var r Pair
	r.a = q.b
	if m := n * 2; m > 0 {
		r.b = m
	} else if m < 0 {
		r.b = -m
	} else {
		r.b = g(n)
	}
	for i := 0; i < n; i++ {
		arr[i%4] = arr[i%4] + 1
	}
	for g(n) > 0 {
		n = n - 1
	}
	pr := &q
	pr.a = 3
	var ip *int
	ip = &total
	*ip = *ip + r.a
	return q.a + r.b + total
}

type Pair struct{ a, b int }

func init() {
	arr = make([]int, 4)
}
`)
	for _, want := range []string{"while (", "new Pair", "arr[", "*("} {
		if !strings.Contains(pkg.Minic, want) {
			t.Errorf("lowered minic missing %q:\n%s", want, pkg.Minic)
		}
	}
	if len(pkg.Funcs) < 2 {
		t.Errorf("funcs = %v, want g and f", pkg.Funcs)
	}
}

// TestDeferWaitGroupForms pins the tolerated defer forms: wg.Add/Done are
// dropped, wg.Wait records a barrier.
func TestDeferWaitGroupForms(t *testing.T) {
	pkg := lowerOK(t, `package p

import "sync"

var wg sync.WaitGroup
var x int

func worker() {
	x = x + 1
}

func f() {
	defer wg.Wait()
	wg.Add(1)
	go worker()
}
`)
	if len(pkg.Barriers) == 0 {
		t.Errorf("defer wg.Wait() recorded no barrier")
	}
}
