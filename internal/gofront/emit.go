package gofront

// The minic emitter: line-oriented so every emitted line can carry the Go
// source position that produced it. Function bodies are lowered into
// sub-emitters and spliced into the main stream only when the whole
// declaration lowered successfully, which is what makes per-declaration
// rejection (and the extern-prototype fallback) clean.

import (
	"fmt"
	"go/token"
	"strings"
)

type emitter struct {
	lines  []string
	posOf  []token.Pos
	indent int
}

// emit appends one line at the current indent, tagged with pos (NoPos for
// structural lines), and returns its 1-based line number.
func (e *emitter) emit(pos token.Pos, s string) int {
	e.lines = append(e.lines, strings.Repeat("  ", e.indent)+s)
	e.posOf = append(e.posOf, pos)
	return len(e.lines)
}

func (e *emitter) emitf(pos token.Pos, format string, args ...any) int {
	return e.emit(pos, fmt.Sprintf(format, args...))
}

// splice appends all of sub's lines, re-indented under e's current indent,
// and returns the line offset to add to sub-relative line numbers.
func (e *emitter) splice(sub *emitter) int {
	offset := len(e.lines)
	prefix := strings.Repeat("  ", e.indent)
	for i, ln := range sub.lines {
		e.lines = append(e.lines, prefix+ln)
		e.posOf = append(e.posOf, sub.posOf[i])
	}
	return offset
}

// source renders the emitted program and its 1-based line map.
func (e *emitter) source() (string, map[int]token.Pos) {
	m := make(map[int]token.Pos, len(e.posOf))
	for i, p := range e.posOf {
		if p.IsValid() {
			m[i+1] = p
		}
	}
	return strings.Join(e.lines, "\n") + "\n", m
}
