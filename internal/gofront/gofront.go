// Package gofront is the real-Go frontend: it lowers a practical subset of
// actual Go packages into the toy-language IR the rest of the system
// analyzes, using only the standard library (go/parser + go/types; the
// module stays dependency-free).
//
// The lowering is a source-to-source transpilation into the minic surface
// language consumed by internal/lang, paired with a metadata sidecar that
// preserves what the translation cannot carry: real token.Pos positions (a
// line map from emitted minic lines back to Go source), the identity of
// every declared guard (which sync.Mutex/RWMutex a critical section was
// written under), the shared-slot accesses with the guards lexically held
// at each, the call graph with spawn (`go`) edges, and WaitGroup barriers.
// The diagnostic pass (internal/vet, cmd/lockvet) consumes the sidecar; the
// inference pipeline consumes the minic.
//
// Subset and translation rules:
//
//   - Package-level vars and struct fields become shared slots: integer
//     kinds and bool lower to int, pointers to named structs keep their
//     shape, []int and []*T lower to the toy array forms, and struct-valued
//     vars are pointerized (var c Counter ⇒ Counter* c = new Counter).
//   - Functions and pointer-receiver methods become IR functions (methods
//     are name-mangled Type_Method with the receiver as first parameter).
//   - `go f(x)` / `go obj.M(x)` / `go func(){...}()` become spawn records;
//     the body is lowered as a synchronous call at the spawn site (the
//     standard conservative over-approximation for points-to and effects),
//     and capture-free function literals are lifted to top level.
//   - Atomic sections come from two sources: a `//lockinfer:atomic`
//     directive on a statement or function, or recovery of existing
//     mu.Lock()…mu.Unlock() spans (including the Lock-then-defer-Unlock
//     idiom at function top level). The span becomes an `atomic` block and
//     the mutex identity is recorded as the *declared* guard.
//   - sync.Mutex / sync.RWMutex values may appear as package vars or
//     struct fields (including embedded); sync.WaitGroup calls are
//     dropped, with Wait() recorded as a barrier event.
//
// Everything else — channels, interfaces, maps, strings, floats, closures
// capturing locals, early returns inside lock spans, unsupported stdlib —
// is out of subset and rejected with a positioned, per-declaration error.
// Rejection is partial: the offending declaration is replaced by an extern
// prototype (when its signature is representable) or dropped, and the rest
// of the package still lowers, so diagnostics run on real files.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirectiveAtomic is the comment directive that marks the next statement
// (or the whole function, when it precedes a declaration) as an atomic
// section to infer locks for.
const DirectiveAtomic = "//lockinfer:atomic"

// AtomicGuard is the pseudo-guard identity recorded for accesses inside a
// directive-marked atomic section: the section is protected by whatever
// the inference assigns it, which is the same identity for every directive
// section and distinct from every declared mutex.
const AtomicGuard = "<atomic>"

// Package is the result of lowering one Go package.
type Package struct {
	// Name is the Go package name.
	Name string
	// Fset resolves the token.Pos fields below.
	Fset *token.FileSet
	// Minic is the lowered toy-language source, ready for pipeline.Compile.
	Minic string
	// LineMap maps a 1-based line of Minic back to the Go source position
	// that produced it (absent for purely structural lines).
	LineMap map[int]token.Pos
	// Funcs lists the successfully lowered functions.
	Funcs []*FuncInfo
	// Sections are the atomic sections, in emission order.
	Sections []*SectionInfo
	// Accesses are the shared-slot accesses of lowered code.
	Accesses []Access
	// Calls are the intra-package call sites (spawns included).
	Calls []Call
	// Barriers are sync.WaitGroup Wait() sites.
	Barriers []Event
	// Guards are the declared mutex identities, sorted.
	Guards []string
	// InitFn is the minic name of the synthesized function holding complex
	// package-level initializers ("" when every initializer was inline).
	// Its accesses happen before any goroutine exists.
	InitFn string
	// Errors are the per-declaration subset rejections (positioned).
	Errors []*DeclError
}

// FuncInfo describes one lowered function.
type FuncInfo struct {
	// MinicName is the name in the emitted toy source ("Counter_Add").
	MinicName string
	// GoName is the Go-facing description ("(*Counter).Add", "Run").
	GoName string
	Pos    token.Pos
}

// SectionInfo describes one atomic section.
type SectionInfo struct {
	// ID is the section's index in Package.Sections; because sections are
	// matched back to ir.Program.Sections by source line, use MinicLine
	// (not ID) to correlate with the compiled program.
	ID int
	// Fn is the owning minic function name.
	Fn string
	// GoFunc is the owning function's Go name.
	GoFunc string
	// Guard is the declared mutex identity ("mu", "Counter.mu"), or "" for
	// a //lockinfer:atomic directive section.
	Guard string
	// RO marks a sync.RWMutex RLock span.
	RO bool
	// Held are the guard identities lexically held when the section opens.
	Held []string
	// Pos is the Go position of the Lock call or directive statement.
	Pos token.Pos
	// MinicLine is the 1-based Minic line of the emitted `atomic {`.
	MinicLine int
}

// Access is one shared-slot access: a package-level var or a struct field.
type Access struct {
	// Slot is the canonical slot identity: the package var name, or
	// "Struct.field" (instance-insensitive, like golintmu).
	Slot string
	// Write marks writes (compound assignments and ++/-- count as writes).
	Write bool
	// Fn is the minic name of the accessing function.
	Fn string
	// Held are the guard identities lexically held at the access
	// (AtomicGuard for directive sections).
	Held []string
	// Section is the index into Package.Sections of the innermost
	// enclosing atomic section, or -1.
	Section int
	Pos     token.Pos
}

// Call is one call site between package functions.
type Call struct {
	Caller, Callee string
	// Held are the guards lexically held at the call.
	Held []string
	// Go marks a spawn (`go` statement).
	Go  bool
	Pos token.Pos
}

// Event is a positioned per-function event (a WaitGroup barrier).
type Event struct {
	Fn  string
	Pos token.Pos
}

// DeclError is a positioned subset rejection of one declaration.
type DeclError struct {
	// Decl names the rejected declaration ("func Run", "var table",
	// "type Conn").
	Decl string
	Pos  token.Position
	Msg  string
}

func (e *DeclError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Decl, e.Msg)
}

// Position resolves a token.Pos through the package's file set.
func (p *Package) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// GoPos maps a minic line back to its Go source position (zero Position
// when the line is structural).
func (p *Package) GoPos(minicLine int) token.Position {
	if pos, ok := p.LineMap[minicLine]; ok {
		return p.Fset.Position(pos)
	}
	return token.Position{}
}

// IsGoSource reports whether src looks like Go rather than toy-language
// source: its first non-blank, non-comment line is a package clause. The
// toy language has no `package` keyword, so the test is unambiguous.
func IsGoSource(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		if strings.HasPrefix(t, "/*") {
			// Skip a (possibly multi-line) leading block comment crudely:
			// treat the rest of the scan as continuing after "*/".
			rest := src[strings.Index(src, "/*")+2:]
			if i := strings.Index(rest, "*/"); i >= 0 {
				return IsGoSource(rest[i+2:])
			}
			return false
		}
		return strings.HasPrefix(t, "package ") || t == "package"
	}
	return false
}

// LowerSource lowers a single Go file given as a string. name labels the
// file in positions ("input.go" when empty).
func LowerSource(name, src string) (*Package, error) {
	if name == "" {
		name = "input.go"
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	return LowerFiles(fset, []*ast.File{file})
}

// LowerDir lowers every non-test .go file of one directory as a package.
func LowerDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	var names []string
	for _, ent := range entries {
		n := ent.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !ent.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("gofront: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, n := range names {
		path := filepath.Join(dir, n)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		files = append(files, file)
	}
	return LowerFiles(fset, files)
}

// LowerFiles lowers an already-parsed package. Syntax must be valid; subset
// violations surface as per-declaration entries in Package.Errors, not as a
// returned error. The frontend never panics on accepted input: internal
// panics (including any from go/types on pathological sources) are
// converted into an error.
func LowerFiles(fset *token.FileSet, files []*ast.File) (pkg *Package, err error) {
	defer func() {
		if r := recover(); r != nil {
			pkg, err = nil, fmt.Errorf("gofront: internal error: %v", r)
		}
	}()
	if len(files) == 0 {
		return nil, fmt.Errorf("gofront: no files")
	}
	name := files[0].Name.Name
	for _, f := range files[1:] {
		if f.Name.Name != name {
			return nil, fmt.Errorf("gofront: mixed package names %q and %q", name, f.Name.Name)
		}
	}
	l := newLowerer(fset, files, name)
	return l.lower()
}
