package conform

import (
	"fmt"

	"lockinfer/internal/codegen"
	"lockinfer/internal/interp"
	"lockinfer/internal/oracle"
)

// The native engine row. A conformance target is compiled to a standalone
// Go binary (internal/codegen) and executed out of process with the same
// dynamic oracle stack the in-process MGL engine uses — the emitted runtime
// links the real mgl.Manager, the §4.2 coverage checker and the Watcher —
// and its printed state fingerprint feeds the same serializability check.
// Builds are cached by source hash (codegen.Build), so a sweep pays one
// compile per distinct program, not per run.

// nativeTarget converts an oracle target into the emitter input plus run
// specs, or explains why the target cannot run natively (externs live in
// the driving process; thread args must be integers to cross the process
// boundary).
func nativeTarget(tg *oracle.Target) (codegen.Program, codegen.RunOptions, error) {
	var opts codegen.RunOptions
	p := codegen.Program{
		Name:     tg.Name,
		Prog:     tg.Prog,
		Pts:      tg.Pts,
		Variants: codegen.DefaultVariants(tg.Plan),
	}
	if len(tg.Externs) > 0 {
		return p, opts, fmt.Errorf("target registers %d extern(s)", len(tg.Externs))
	}
	if err := codegen.Unsupported(tg.Prog); err != nil {
		return p, opts, err
	}
	if tg.Setup != nil {
		s, err := nativeSpec(*tg.Setup)
		if err != nil {
			return p, opts, err
		}
		opts.Setup = &s
	}
	for _, th := range tg.Threads {
		s, err := nativeSpec(th)
		if err != nil {
			return p, opts, err
		}
		opts.Threads = append(opts.Threads, s)
	}
	return p, opts, nil
}

func nativeSpec(ts interp.ThreadSpec) (codegen.Spec, error) {
	s := codegen.Spec{Fn: ts.Fn}
	for _, a := range ts.Args {
		if a.Kind != interp.VInt {
			return s, fmt.Errorf("non-integer arg %s for %s cannot cross the process boundary", a, ts.Fn)
		}
		s.Args = append(s.Args, a.Int)
	}
	return s, nil
}

// runNative executes the target's compiled binary once under the given
// plan variant and optional runtime mutation, mapping the process output
// onto the harness's EngineRun shape.
func runNative(tg *oracle.Target, plan, mutate string) (*EngineRun, error) {
	p, opts, err := nativeTarget(tg)
	if err != nil {
		return nil, fmt.Errorf("native engine: %w", err)
	}
	opts.Plan = plan
	opts.Mutate = mutate
	res, err := codegen.Native(p, opts)
	if err != nil {
		return nil, fmt.Errorf("native engine: %w", err)
	}
	return &EngineRun{Engine: EngineNative, State: res.State, Flags: res.Flags}, nil
}

// runNativeMutants runs the negative-conformance protocol through the
// codegen path: the compiled binary's baked drop-all variant and its
// runtime permute-plan mutation. Mirrors CheckMutants' skip rules — the
// drop-all row only counts when the inferred plan had locks to drop, the
// permute row only when the binary reports it actually reversed a
// multi-step acquisition plan.
func runNativeMutants(tg *oracle.Target, ndropped int, opts Options) ([]MutantRun, error) {
	var out []MutantRun
	if ndropped > 0 {
		run, err := runNative(tg, codegen.VariantDropAll, "")
		if err != nil {
			return nil, fmt.Errorf("conform: %s: native drop-all mutant: %w", tg.Name, err)
		}
		out = append(out, MutantRun{
			Target:  tg.Name + "/native-drop-all",
			Kind:    "drop-all-locks-native",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no locks inferred; native drop-all mutant skipped", tg.Name)
	}

	p, ropts, err := nativeTarget(tg)
	if err != nil {
		return nil, fmt.Errorf("conform: %s: native permute mutant: %w", tg.Name, err)
	}
	ropts.Plan = codegen.VariantInferred
	ropts.Mutate = "permute"
	res, err := codegen.Native(p, ropts)
	if err != nil {
		return nil, fmt.Errorf("conform: %s: native permute mutant: %w", tg.Name, err)
	}
	if res.Permuted > 0 {
		out = append(out, MutantRun{
			Target:  tg.Name + "/native-permute",
			Kind:    "permute-plan-native",
			Flagged: len(res.Flags) > 0,
			Flags:   res.Flags,
		})
	} else {
		opts.Log("conform: %s: no multi-step plan acquired; native permute mutant skipped", tg.Name)
	}
	return out, nil
}
