package conform

import (
	"testing"

	"lockinfer/internal/interp"
	"lockinfer/internal/oracle"
	"lockinfer/internal/progs"
)

// Every generated program must conform on every engine: no dynamic oracle
// findings, and every concurrent final state explained by some
// serialization of the atomic sections.
func TestProgenConform(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			tg, err := oracle.FromProgen(seed, 2, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Check(tg, Options{Log: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("conformance failure: %v", err)
			}
			if res.Serializations == 0 || len(res.States) == 0 {
				t.Fatalf("serialization oracle enumerated nothing: %+v", res)
			}
		})
	}
}

// The hand-written corpus conforms too (the programs whose worker/setup
// structure the oracle harness models).
func TestCorpusConform(t *testing.T) {
	names := map[string]bool{"move": true, "hashtable": true, "list": true}
	if testing.Short() {
		names = map[string]bool{"move": true}
	}
	for _, p := range progs.All() {
		if !names[p.Name] {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			tg, err := oracle.FromCorpus(p, 2, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Check(tg, Options{Log: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("conformance failure: %v", err)
			}
		})
	}
}

// Negative conformance: every effective fault injection must be flagged.
func TestMutantsFlagged(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	total := 0
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			tg, err := oracle.FromProgen(seed, 2, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			runs, err := CheckMutants(tg, Options{Log: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) == 0 {
				t.Fatalf("no effective mutants for seed %d", seed)
			}
			if err := MutantsErr(runs); err != nil {
				t.Fatal(err)
			}
		})
		total++
	}
	if total == 0 {
		t.Fatal("no mutants exercised")
	}
}

// The closed feedback loop: profile → refine → full conformance on the
// refined plan. Every refined plan must conform exactly like the original,
// whether or not the profile triggered a rewrite.
func TestRefinedPlansConform(t *testing.T) {
	seeds := []int64{1, 3, 5, 7, 9}
	if testing.Short() {
		seeds = []int64{1, 7}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			tg, err := oracle.FromProgen(seed, 2, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			res, dec, err := CheckRefined(tg, Options{Log: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("refinement: %v", dec.Lines())
			if err := res.Err(); err != nil {
				t.Fatalf("refined conformance failure: %v", err)
			}
		})
	}
}

// CollectProfile must observe real lock traffic on a locked program.
func TestCollectProfileObservesAcquires(t *testing.T) {
	tg, err := oracle.FromProgen(1, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(tg)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalAcquires() == 0 {
		t.Fatalf("profile recorded no acquires: %+v", prof)
	}
	if len(prof.Sections) == 0 {
		t.Fatal("profile recorded no section runs")
	}
}

// The refinement-checker mutants must be flagged on targets where they
// apply: demote-hot on a fine-locked plan, split-no-proof on a plan with a
// coarse-shared class.
func TestRefineMutantsFlagged(t *testing.T) {
	kinds := map[string]bool{}
	for seed := int64(1); seed <= 10; seed++ {
		tg, err := oracle.FromProgen(seed, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		runs := checkRefineMutants(tg, Options{Log: t.Logf}.withDefaults())
		for _, r := range runs {
			kinds[r.Kind] = true
			if !r.Flagged {
				t.Errorf("refine mutant %s (%s) not flagged", r.Target, r.Kind)
			}
		}
	}
	if !kinds["refine-demote-hot"] {
		t.Error("no seed exercised the demote-hot mutant")
	}
	if !kinds["refine-split-no-proof"] {
		t.Error("no seed exercised the split-no-proof mutant")
	}
}

// The STM engine must agree with the lock engines on final state, and its
// counters must show real transactional activity.
func TestSTMEngineCommits(t *testing.T) {
	tg, err := oracle.FromProgen(3, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(tg, Options{Engines: []Engine{EngineSTM}, Repeat: 1, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Commits == 0 {
		t.Fatalf("STM run committed no transactions: %+v", res.Runs[0])
	}
}

// The hybrid engine alone: conformant final states, and the transaction
// counters must show the optimistic path actually ran.
func TestHybridEngineConforms(t *testing.T) {
	tg, err := oracle.FromProgen(7, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(tg, Options{Engines: []Engine{EngineHybrid}, Repeat: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		if res.Runs[i].Engine != EngineHybrid {
			t.Fatalf("run %d on engine %s, want hybrid", i, res.Runs[i].Engine)
		}
		if res.Runs[i].Commits == 0 {
			t.Fatalf("hybrid run %d committed no transactions: %+v", i, res.Runs[i])
		}
	}
}

// The three hybrid-specific faults must each be flagged on a target known
// to exercise them (the shared-counter-heavy progen seed used by the other
// single-engine tests has multi-lock sections and real write conflicts).
func TestHybridMutantsFlagged(t *testing.T) {
	tg, err := oracle.FromProgen(1, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := checkHybridMutants(tg, 1, Options{Log: t.Logf}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, r := range runs {
		kinds[r.Kind] = true
		if !r.Flagged {
			t.Errorf("hybrid mutant %s (%s) not flagged", r.Target, r.Kind)
		}
	}
	if !kinds["hybrid-drop-fallback-locks"] || !kinds["hybrid-permute-fallback-plan"] {
		t.Fatalf("deterministic hybrid mutants missing from %v", kinds)
	}
}

// contendedCounterSrc keeps each transaction open for several Go scheduler
// time slices (the interpreter has no internal yield points, so on few
// cores only preemption interleaves threads) — the schedule-dependent
// skip-validation fault needs real read-write conflicts to ignore.
const contendedCounterSrc = `
int counter;
void worker(int n) {
  int i = 0;
  while (i < n) {
    atomic {
      int v = counter;
      int j = 0;
      while (j < 500000) { j = j + 1; }
      counter = v + 1;
    }
    i = i + 1;
  }
}
`

// The skip-validation mutant must be flagged on a target with real
// conflicts: with TL2 validation ignored, overlapping increments lose
// updates, and the final count falls outside the (single) serializable
// state.
func TestSkipValidationMutantFlagged(t *testing.T) {
	workers := []interp.ThreadSpec{
		{Fn: "worker", Args: []interp.Value{interp.IntV(1)}},
		{Fn: "worker", Args: []interp.Value{interp.IntV(1)}},
	}
	tg, err := oracle.FromSource("contended-counter", contendedCounterSrc, 2, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := checkSkipValidationMutant(tg, Options{Log: t.Logf}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Fatal("skip-validation mutant never manifested (no conflict ignored)")
	}
	if !run.Flagged {
		t.Fatalf("skip-validation mutant not flagged: %+v", run)
	}
}

// The native engine alone: the compiled binary's state fingerprint must
// land in the serialization oracle's state set, and a clean program must
// produce no flags out of process.
func TestNativeEngineConforms(t *testing.T) {
	tg, err := oracle.FromProgen(5, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(tg, Options{Engines: []Engine{EngineNative}, Repeat: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		if res.Runs[i].Engine != EngineNative {
			t.Fatalf("run %d on engine %s, want native", i, res.Runs[i].Engine)
		}
	}
}

// Targets outside the backend subset (registered externs) must fail the
// native engine with a diagnostic, not a miscompiled binary.
func TestNativeEngineRejectsExterns(t *testing.T) {
	tg, err := oracle.FromProgen(2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg.Externs = map[string]interp.ExternFunc{
		"host_only": func(args []interp.Value) (interp.Value, error) { return interp.Null(), nil },
	}
	if _, err := Check(tg, Options{Engines: []Engine{EngineNative}, Repeat: 1}); err == nil {
		t.Fatal("native engine accepted a target with externs")
	}
}

func TestParseEngines(t *testing.T) {
	all, err := ParseEngines("all")
	if err != nil || len(all) != 6 {
		t.Fatalf("ParseEngines(all) = %v, %v", all, err)
	}
	two, err := ParseEngines("mgl, hybrid")
	if err != nil || len(two) != 2 || two[0] != EngineMGL || two[1] != EngineHybrid {
		t.Fatalf("ParseEngines(mgl, hybrid) = %v, %v", two, err)
	}
	if _, err := ParseEngines("bogus"); err == nil {
		t.Fatal("ParseEngines(bogus) succeeded")
	}
}

func seedName(seed int64) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}
