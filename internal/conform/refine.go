package conform

// The runtime→inference feedback loop, closed through the conformance
// harness: CollectProfile runs a target under the profiling interpreter,
// RefineTarget rewrites its plan through the profile-guided refinement
// pass, and CheckRefined validates the refined plan under every engine —
// so a refined plan is held to exactly the bar the unrefined plan passed.

import (
	"fmt"

	"lockinfer/internal/andersen"
	"lockinfer/internal/interp"
	"lockinfer/internal/locks"
	"lockinfer/internal/oracle"
	"lockinfer/internal/refine"
)

// CollectProfile executes the target once, concurrently, on the sharded
// mgl.Manager with runtime profiling enabled and returns the merged lock
// profile (per-lock acquire/wait counters plus per-section contention).
func CollectProfile(tg *oracle.Target) (*locks.Profile, error) {
	m := interp.NewMachine(tg.Prog, tg.Pts, tg.Plan)
	if tg.StepLimit > 0 {
		m.StepLimit = tg.StepLimit
	}
	for name, fn := range tg.Externs {
		m.RegisterExtern(name, fn)
	}
	m.EnableProfiling()
	if err := m.Init(); err != nil {
		return nil, fmt.Errorf("conform: %s: profile init: %w", tg.Name, err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			return nil, fmt.Errorf("conform: %s: profile setup: %w", tg.Name, err)
		}
	}
	if err := m.Run(tg.Threads); err != nil {
		return nil, fmt.Errorf("conform: %s: profile run: %w", tg.Name, err)
	}
	return m.Profile(tg.Name, "mgl"), nil
}

// RefineTarget applies the profile-guided refinement to the target's plan
// and returns the refined target (name suffixed "/refined") plus the
// decision log. The input target is not modified; an empty profile yields
// an unchanged plan.
func RefineTarget(tg *oracle.Target, prof *locks.Profile, opts refine.Options) (*oracle.Target, *refine.Result) {
	var and *andersen.Analysis
	if tg.C != nil {
		and = tg.C.Andersen()
	}
	res := refine.Refine(tg.Prog, tg.Pts, and, tg.Plan, prof, opts)
	out := *tg
	out.Name = tg.Name + "/refined"
	out.Plan = res.Plan
	return &out, res
}

// CheckRefined closes the feedback loop on one target: collect a runtime
// profile, refine the plan, and run the full conformance protocol on the
// refined target. The refine.Result reports what (if anything) changed.
func CheckRefined(tg *oracle.Target, opts Options) (*Result, *refine.Result, error) {
	prof, err := CollectProfile(tg)
	if err != nil {
		return nil, nil, err
	}
	rtg, res := RefineTarget(tg, prof, refine.Options{})
	r, err := Check(rtg, opts)
	return r, res, err
}
