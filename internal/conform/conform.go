// Package conform is the cross-engine conformance harness: it executes one
// program concurrently under every execution backend — inferred locks on
// the sharded mgl.Manager, inferred locks on the frozen mgl.RefManager, the
// global-lock plan, the TL2 stm.Runtime, the natively compiled codegen
// binary, and the adaptive hybrid engine — and checks each outcome's final
// shared state against the set of states reachable by some serialization
// of the program's atomic sections (Theorem 1 as an executable oracle). It
// also mutation-tests itself: re-running a target with the fault hooks
// (transform.DropLock, Session.PermutePlan, the hybrid fallback faults,
// stm.Runtime.SkipValidation) must make the harness flag the run.
package conform

import (
	"fmt"
	"sort"
	"strings"

	"lockinfer/internal/codegen"
	"lockinfer/internal/hybrid"
	"lockinfer/internal/interp"
	"lockinfer/internal/mgl"
	"lockinfer/internal/oracle"
	"lockinfer/internal/stm"
	"lockinfer/internal/transform"
)

// Engine names one execution backend.
type Engine int

const (
	// EngineMGL runs inferred locks on the sharded Manager with the §4.2
	// coverage checker, the race detector and the deadlock monitor.
	EngineMGL Engine = iota
	// EngineRef runs inferred locks on the frozen pre-sharding RefManager
	// (checker and race detector attached; the Watcher is Manager-only).
	EngineRef
	// EngineGlobal runs the one-global-lock plan on the sharded Manager.
	EngineGlobal
	// EngineSTM runs atomic sections as TL2 transactions; its only oracle
	// is the final-state serializability check.
	EngineSTM
	// EngineNative compiles the program to a real Go binary via
	// internal/codegen (inferred locks on the sharded Manager, the §4.2
	// checker and the Watcher linked in) and runs it out of process; the
	// printed state fingerprint is checked like any other engine's.
	EngineNative
	// EngineHybrid runs the adaptive engine: sections start as TL2
	// transactions and fall back to their inferred lock plans under abort
	// pressure. Pessimistic executions carry the §4.2 checker and the
	// Watcher; optimistic ones are validated by the state check.
	EngineHybrid
)

func (e Engine) String() string {
	switch e {
	case EngineMGL:
		return "mgl"
	case EngineRef:
		return "mgl-ref"
	case EngineGlobal:
		return "global"
	case EngineSTM:
		return "stm"
	case EngineNative:
		return "native"
	case EngineHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// AllEngines lists every backend in canonical order.
func AllEngines() []Engine {
	return []Engine{EngineMGL, EngineRef, EngineGlobal, EngineSTM, EngineNative, EngineHybrid}
}

// ParseEngines parses a comma-separated engine list ("mgl,stm"); "all" or
// the empty string selects every backend.
func ParseEngines(s string) ([]Engine, error) {
	if s == "" || s == "all" {
		return AllEngines(), nil
	}
	var out []Engine
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, e := range AllEngines() {
			if e.String() == name {
				out = append(out, e)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("conform: unknown engine %q (have mgl, mgl-ref, global, stm, native, hybrid)", name)
		}
	}
	return out, nil
}

// Options configures one conformance check.
type Options struct {
	// Engines selects the backends to validate (default: all four).
	Engines []Engine
	// Repeat is the number of free-running concurrent executions per engine
	// (each samples a different real schedule); default 2.
	Repeat int
	// MaxSerializations bounds the serialization oracle's enumeration;
	// default 96. Programs whose section interleavings exceed the bound are
	// checked against the truncated set, with misses reported as unknown
	// rather than violations.
	MaxSerializations int
	// States (with StatesTruncated) is the serializable-state set from a
	// prior Check of the same target. CheckMutants' skip-validation mutant
	// consults it to judge final states and recomputes it when empty.
	States          []string
	StatesTruncated bool
	// Log, when set, receives progress and truncation notes.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if len(o.Engines) == 0 {
		o.Engines = AllEngines()
	}
	if o.Repeat <= 0 {
		o.Repeat = 2
	}
	if o.MaxSerializations <= 0 {
		o.MaxSerializations = 96
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// EngineRun is the outcome of one concurrent execution under one backend.
type EngineRun struct {
	Engine Engine
	// State is the canonical final-state fingerprint (interp.StateDump).
	State string
	// Serializable reports that State matches some enumerated
	// serialization; Unknown that it matched none but the enumeration was
	// truncated, so no verdict is possible.
	Serializable bool
	Unknown      bool
	// Flags are the dynamic oracle findings (checker violation, race,
	// order violation, lock-order cycle, deadlock, runtime error).
	Flags []string
	// Commits/Aborts are the transaction counters (EngineSTM only).
	Commits int64
	Aborts  int64
}

// Flagged reports whether any dynamic oracle fired on this run.
func (r *EngineRun) Flagged() bool { return len(r.Flags) > 0 }

// Conforms reports a fully clean run: no oracle findings and a final state
// explained by some serialization.
func (r *EngineRun) Conforms() bool { return !r.Flagged() && (r.Serializable || r.Unknown) }

// Result is the conformance verdict for one target.
type Result struct {
	Target string
	// TotalSections is the largest number of atomic sections observed in a
	// serial execution; Serializations the number of section orders
	// enumerated; Truncated whether MaxSerializations cut the enumeration.
	TotalSections  int
	Serializations int
	Truncated      bool
	// States is the sorted set of serializable final states.
	States []string
	Runs   []EngineRun
}

// Err summarizes the result: nil iff every engine run conforms.
func (r *Result) Err() error {
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.Flagged() {
			return fmt.Errorf("conform: %s [%s]: %s", r.Target, run.Engine, run.Flags[0])
		}
		if !run.Serializable && !run.Unknown {
			return fmt.Errorf("conform: %s [%s]: final state %q matches none of %d serializations",
				r.Target, run.Engine, run.State, r.Serializations)
		}
	}
	return nil
}

// Check runs the full conformance protocol on one target: enumerate the
// serialization oracle's reachable states, then execute the target
// concurrently under each selected engine and validate every outcome.
func Check(tg *oracle.Target, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ser, err := serialStates(tg, opts.MaxSerializations, opts.Log)
	if err != nil {
		return nil, fmt.Errorf("conform: %s: serialization oracle: %w", tg.Name, err)
	}
	res := &Result{
		Target:         tg.Name,
		TotalSections:  ser.totalSections,
		Serializations: ser.serializations,
		Truncated:      ser.truncated,
	}
	for st := range ser.states {
		res.States = append(res.States, st)
	}
	sort.Strings(res.States)
	for _, e := range opts.Engines {
		for rep := 0; rep < opts.Repeat; rep++ {
			run, err := runEngine(tg, e)
			if err != nil {
				return nil, fmt.Errorf("conform: %s [%s]: %w", tg.Name, e, err)
			}
			run.Serializable = ser.states[run.State]
			if !run.Serializable && ser.truncated {
				run.Unknown = true
				opts.Log("conform: %s [%s]: state unmatched but oracle truncated at %d serializations; inconclusive",
					tg.Name, e, ser.serializations)
			}
			res.Runs = append(res.Runs, *run)
		}
	}
	return res, nil
}

// runEngine executes the target once, concurrently, under one backend, with
// that backend's full set of dynamic oracles attached.
func runEngine(tg *oracle.Target, e Engine) (*EngineRun, error) {
	if e == EngineNative {
		return runNative(tg, codegen.VariantInferred, "")
	}
	if e == EngineHybrid {
		run, _, err := runHybrid(tg, conformHybridConfig, false)
		return run, err
	}
	plan := tg.Plan
	if e == EngineGlobal {
		plan = transform.GlobalLockPlan(tg.Prog)
	}
	m := interp.NewMachine(tg.Prog, tg.Pts, plan)
	if tg.StepLimit > 0 {
		m.StepLimit = tg.StepLimit
	}
	for name, fn := range tg.Externs {
		m.RegisterExtern(name, fn)
	}
	run := &EngineRun{Engine: e}
	var det *oracle.RaceDetector
	var watch *mgl.Watcher
	var rt *stm.Runtime
	switch e {
	case EngineMGL, EngineGlobal:
		m.Checked = true
		det = oracle.NewRaceDetector()
		m.Tracer = det
		watch = mgl.NewWatcher()
		m.Manager().SetWatcher(watch)
		if tg.PlanMutator != nil {
			m.Manager().PermutePlan = tg.PlanMutator
		}
	case EngineRef:
		m.Checked = true
		m.UseRuntime(mgl.NewRefManager())
		det = oracle.NewRaceDetector()
		m.Tracer = det
	case EngineSTM:
		// The race detector derives happens-before edges from lock
		// acquisitions; under optimistic execution there are none, so it
		// stays detached and the state check is the engine's only oracle.
		rt = stm.New()
		m.UseSTM(rt)
	}
	if err := m.Init(); err != nil {
		return nil, fmt.Errorf("init: %w", err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	if err := m.Run(tg.Threads); err != nil {
		run.Flags = append(run.Flags, err.Error())
	}
	if det != nil {
		for _, r := range det.Races() {
			run.Flags = append(run.Flags, r.String())
		}
	}
	if watch != nil {
		for _, v := range watch.OrderViolations() {
			run.Flags = append(run.Flags, v.String())
		}
		for _, c := range watch.LockOrderCycles() {
			run.Flags = append(run.Flags, c.String())
		}
		for _, d := range watch.Deadlocks() {
			d := d
			run.Flags = append(run.Flags, d.Error())
		}
	}
	if rt != nil {
		run.Commits, run.Aborts = rt.Commits(), rt.Aborts()
	}
	run.State = m.StateDump()
	return run, nil
}

// conformHybridConfig is the adaptive policy used for conformance runs: a
// tight abort budget and short stickiness so the tiny conformance programs
// exercise both the optimistic and the fallback path.
var conformHybridConfig = hybrid.Config{AbortThreshold: 2, StickyRuns: 4}

// runHybrid executes the target once under the hybrid engine with an
// explicit policy, optionally with the STM runtime's validation disabled
// (the skip-validation mutant). It returns the run, and the number of
// conflicts the runtime detected but ignored (nonzero only under
// skipValidation — the mutant's effectiveness signal). Pessimistic
// executions carry the full pessimistic oracle stack (§4.2 checker,
// Watcher, PlanMutator); the race detector stays detached because
// optimistic commits contribute no happens-before edges it understands.
func runHybrid(tg *oracle.Target, cfg hybrid.Config, skipValidation bool) (*EngineRun, int64, error) {
	m := interp.NewMachine(tg.Prog, tg.Pts, tg.Plan)
	if tg.StepLimit > 0 {
		m.StepLimit = tg.StepLimit
	}
	for name, fn := range tg.Externs {
		m.RegisterExtern(name, fn)
	}
	m.Checked = true
	rt := stm.New()
	rt.SkipValidation = skipValidation
	m.UseHybrid(rt, hybrid.NewPolicy(cfg))
	watch := mgl.NewWatcher()
	m.Manager().SetWatcher(watch)
	if tg.PlanMutator != nil {
		m.Manager().PermutePlan = tg.PlanMutator
	}
	run := &EngineRun{Engine: EngineHybrid}
	if err := m.Init(); err != nil {
		return nil, 0, fmt.Errorf("init: %w", err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			return nil, 0, fmt.Errorf("setup: %w", err)
		}
	}
	if err := m.Run(tg.Threads); err != nil {
		run.Flags = append(run.Flags, err.Error())
	}
	for _, v := range watch.OrderViolations() {
		run.Flags = append(run.Flags, v.String())
	}
	for _, c := range watch.LockOrderCycles() {
		run.Flags = append(run.Flags, c.String())
	}
	for _, d := range watch.Deadlocks() {
		d := d
		run.Flags = append(run.Flags, d.Error())
	}
	run.Commits, run.Aborts = rt.Commits(), rt.Aborts()
	run.State = m.StateDump()
	return run, rt.IgnoredConflicts(), nil
}
