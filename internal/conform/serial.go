package conform

import (
	"fmt"
	"sort"

	"lockinfer/internal/interp"
	"lockinfer/internal/oracle"
	"lockinfer/internal/transform"
)

// The serialization oracle enumerates the final shared states reachable by
// executing the target's atomic sections in some serial order. Threads run
// one at a time under a token controller that makes a scheduling decision
// only when a thread is about to enter an atomic section; everything
// between sections is thread-local (the race-checked engines certify this:
// a shared access outside a section that could conflict would be reported
// as a race), so the decision sequence — which thread commits its next
// section — is exactly a serialization of the sections. Depth-first search
// over the decision tree enumerates every section order, exhaustively for
// small programs and up to maxSer orders (with an explicit truncation log)
// beyond that.

// serialInfo is the enumeration's outcome: the set of canonical final
// states and the shape of the search.
type serialInfo struct {
	states         map[string]bool
	serializations int
	totalSections  int
	truncated      bool
}

// serialDecision is one choice point: the threads parked at a section
// entry, and the one elected to run its section.
type serialDecision struct {
	chosen     int
	candidates []int
}

// serialStates enumerates section serializations of the target by DFS over
// decision prefixes (the same prefix-pinning scheme as the oracle's
// schedule explorer, at section granularity).
func serialStates(tg *oracle.Target, maxSer int, logf func(string, ...any)) (*serialInfo, error) {
	info := &serialInfo{states: map[string]bool{}}
	stack := [][]int{nil}
	for len(stack) > 0 {
		if info.serializations >= maxSer {
			info.truncated = true
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		decisions, dump, err := runSerial(tg, prefix)
		if err != nil {
			return nil, err
		}
		info.serializations++
		info.states[dump] = true
		if len(decisions) > info.totalSections {
			info.totalSections = len(decisions)
		}
		chosen := make([]int, len(decisions))
		for i, d := range decisions {
			chosen[i] = d.chosen
		}
		for i := len(prefix); i < len(decisions); i++ {
			for _, t := range decisions[i].candidates {
				if t == decisions[i].chosen {
					continue
				}
				np := make([]int, i+1)
				copy(np, chosen[:i])
				np[i] = t
				stack = append(stack, np)
			}
		}
	}
	if info.truncated {
		logf("conform: %s: serialization enumeration truncated at %d orders (%d sections total); state checks beyond the set are inconclusive",
			tg.Name, info.serializations, info.totalSections)
	}
	return info, nil
}

// serialEvent is a thread's report to the serial controller.
type serialEvent struct {
	tid   int
	point interp.YieldPoint
	done  bool
	err   error
}

// serialCtl parks every thread at every yield point; the driver decides
// which thread advances.
type serialCtl struct {
	events chan serialEvent
	resume []chan struct{}
}

func (c *serialCtl) Yield(tid int, p interp.YieldPoint) {
	c.events <- serialEvent{tid: tid, point: p}
	<-c.resume[tid]
}

// runSerial executes one serialization: prefix pins the first section-order
// choices, later decisions default to the lowest parked thread. It returns
// the decision trace and the canonical final state. The serial executions
// run the mutation-immune global-lock plan — the oracle defines correct
// outcomes and must not inherit a fault-injected or even merely
// inference-derived plan.
func runSerial(tg *oracle.Target, prefix []int) ([]serialDecision, string, error) {
	m := interp.NewMachine(tg.Prog, tg.Pts, transform.GlobalLockPlan(tg.Prog))
	if tg.StepLimit > 0 {
		m.StepLimit = tg.StepLimit
	}
	for name, fn := range tg.Externs {
		m.RegisterExtern(name, fn)
	}
	if err := m.Init(); err != nil {
		return nil, "", fmt.Errorf("init: %w", err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			return nil, "", fmt.Errorf("setup: %w", err)
		}
	}

	n := len(tg.Threads)
	ctl := &serialCtl{events: make(chan serialEvent), resume: make([]chan struct{}, n+1)}
	for tid := 1; tid <= n; tid++ {
		ctl.resume[tid] = make(chan struct{})
	}
	m.Sched = ctl
	for i, spec := range tg.Threads {
		tid := i + 1
		go func(tid int, spec interp.ThreadSpec) {
			defer func() {
				if r := recover(); r != nil {
					ctl.events <- serialEvent{tid: tid, done: true,
						err: fmt.Errorf("thread %d panic: %v", tid, r)}
				}
			}()
			<-ctl.resume[tid]
			_, err := m.Call(tid, spec.Fn, spec.Args)
			ctl.events <- serialEvent{tid: tid, done: true, err: err}
		}(tid, spec)
	}

	// advance runs tid — currently parked in Yield or at its start gate —
	// until it parks at its next section entry (recorded in parked) or
	// finishes. Only tid runs in the meantime, so the next event is its.
	parked := map[int]bool{}
	var firstErr error
	advance := func(tid int) {
		for {
			ctl.resume[tid] <- struct{}{}
			ev := <-ctl.events
			if ev.done {
				if ev.err != nil && firstErr == nil {
					firstErr = ev.err
				}
				return
			}
			if ev.point == interp.YieldAtomicEnter {
				parked[tid] = true
				return
			}
		}
	}

	// Warm-up: run each thread to its first section entry, in thread
	// order. Pre-section code is thread-local, so this is decision-free.
	for tid := 1; tid <= n; tid++ {
		advance(tid)
	}
	var decisions []serialDecision
	for len(parked) > 0 {
		cands := make([]int, 0, len(parked))
		for tid := range parked {
			cands = append(cands, tid)
		}
		sort.Ints(cands)
		pick := cands[0]
		if di := len(decisions); di < len(prefix) && parked[prefix[di]] {
			pick = prefix[di]
		}
		decisions = append(decisions, serialDecision{chosen: pick, candidates: cands})
		delete(parked, pick)
		advance(pick)
	}
	if firstErr != nil {
		return nil, "", fmt.Errorf("serial execution: %w", firstErr)
	}
	return decisions, m.StateDump(), nil
}
