package conform

import (
	"fmt"
	"sync/atomic"

	"lockinfer/internal/mgl"
	"lockinfer/internal/oracle"
)

// Negative conformance: the harness itself is mutation-tested. Each target
// is re-run with a fault injected through the existing hooks — every
// inferred lock dropped from the plan (transform.DropLock), and every
// session's acquisition plan reversed (Session.PermutePlan) — and the
// harness must flag the run. A checker that cannot see planted
// non-serializability proves nothing about the absence of real bugs.

// MutantRun is the outcome of one fault-injected execution.
type MutantRun struct {
	Target string
	// Kind is the fault: "drop-all-locks" or "permute-plan".
	Kind string
	// Flagged reports that the harness detected the fault; Flags carries
	// the findings.
	Flagged bool
	Flags   []string
}

// reversePlan is the canonical plan mutation: acquire in the opposite of
// the canonical global order.
func reversePlan(_ int64, steps []mgl.PlanStep) []mgl.PlanStep {
	out := make([]mgl.PlanStep, len(steps))
	for i, st := range steps {
		out[len(steps)-1-i] = st
	}
	return out
}

// CheckMutants runs the negative-conformance protocol on one target: the
// drop-all-locks mutant (every section plan emptied — the first shared
// access inside a section trips the §4.2 checker, and any interleaving
// that actually interferes also races) and the permute-plan mutant (the
// Watcher's canonical-order assertion fires on every out-of-order grant).
// Both run under EngineMGL, where the full dynamic oracle stack is
// attached. An unflagged mutant is a harness bug, reported by Err.
func CheckMutants(tg *oracle.Target, opts Options) ([]MutantRun, error) {
	opts = opts.withDefaults()
	var out []MutantRun

	dropped, ndropped := tg.DropLock("")
	if ndropped > 0 {
		run, err := runEngine(dropped, EngineMGL)
		if err != nil {
			return nil, fmt.Errorf("conform: %s: drop-all mutant: %w", tg.Name, err)
		}
		out = append(out, MutantRun{
			Target:  dropped.Name,
			Kind:    "drop-all-locks",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no locks inferred; drop-all mutant skipped", tg.Name)
	}

	// Reversing a plan of fewer than two steps is the identity; only count
	// the mutant when some session actually acquired out of order.
	var effective atomic.Bool
	permuted := *tg
	permuted.Name = tg.Name + "/permute"
	permuted.PlanMutator = func(sid int64, steps []mgl.PlanStep) []mgl.PlanStep {
		if len(steps) > 1 {
			effective.Store(true)
		}
		return reversePlan(sid, steps)
	}
	run, err := runEngine(&permuted, EngineMGL)
	if err != nil {
		return nil, fmt.Errorf("conform: %s: permute mutant: %w", tg.Name, err)
	}
	if effective.Load() {
		out = append(out, MutantRun{
			Target:  permuted.Name,
			Kind:    "permute-plan",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no multi-step plan acquired; permute mutant skipped", tg.Name)
	}

	// The same two faults again, through the codegen path: the compiled
	// binary must flag its baked drop-all variant and its runtime permute
	// mutation. Targets outside the backend's subset (externs, non-integer
	// args) skip with a note rather than failing the in-process protocol.
	if _, _, err := nativeTarget(tg); err != nil {
		opts.Log("conform: %s: native mutants skipped: %v", tg.Name, err)
	} else {
		nruns, err := runNativeMutants(tg, ndropped, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, nruns...)
	}
	return out, nil
}

// MutantsErr folds mutant runs into a verdict: nil iff every mutant was
// flagged.
func MutantsErr(runs []MutantRun) error {
	for _, r := range runs {
		if !r.Flagged {
			return fmt.Errorf("conform: mutant %s (%s) was NOT flagged — the harness missed an injected fault", r.Target, r.Kind)
		}
	}
	return nil
}
