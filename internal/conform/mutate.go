package conform

import (
	"fmt"
	"sync/atomic"

	"lockinfer/internal/andersen"
	"lockinfer/internal/audit"
	"lockinfer/internal/hybrid"
	"lockinfer/internal/mgl"
	"lockinfer/internal/oracle"
	"lockinfer/internal/refine"
)

// Negative conformance: the harness itself is mutation-tested. Each target
// is re-run with a fault injected through the existing hooks — every
// inferred lock dropped from the plan (transform.DropLock), and every
// session's acquisition plan reversed (Session.PermutePlan) — and the
// harness must flag the run. A checker that cannot see planted
// non-serializability proves nothing about the absence of real bugs.

// MutantRun is the outcome of one fault-injected execution.
type MutantRun struct {
	Target string
	// Kind is the fault: "drop-all-locks" or "permute-plan".
	Kind string
	// Flagged reports that the harness detected the fault; Flags carries
	// the findings.
	Flagged bool
	Flags   []string
}

// reversePlan is the canonical plan mutation: acquire in the opposite of
// the canonical global order.
func reversePlan(_ int64, steps []mgl.PlanStep) []mgl.PlanStep {
	out := make([]mgl.PlanStep, len(steps))
	for i, st := range steps {
		out[len(steps)-1-i] = st
	}
	return out
}

// CheckMutants runs the negative-conformance protocol on one target: the
// drop-all-locks mutant (every section plan emptied — the first shared
// access inside a section trips the §4.2 checker, and any interleaving
// that actually interferes also races) and the permute-plan mutant (the
// Watcher's canonical-order assertion fires on every out-of-order grant).
// Both run under EngineMGL, where the full dynamic oracle stack is
// attached. An unflagged mutant is a harness bug, reported by Err.
func CheckMutants(tg *oracle.Target, opts Options) ([]MutantRun, error) {
	opts = opts.withDefaults()
	var out []MutantRun

	dropped, ndropped := tg.DropLock("")
	if ndropped > 0 {
		run, err := runEngine(dropped, EngineMGL)
		if err != nil {
			return nil, fmt.Errorf("conform: %s: drop-all mutant: %w", tg.Name, err)
		}
		out = append(out, MutantRun{
			Target:  dropped.Name,
			Kind:    "drop-all-locks",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no locks inferred; drop-all mutant skipped", tg.Name)
	}

	// Reversing a plan of fewer than two steps is the identity; only count
	// the mutant when some session actually acquired out of order.
	var effective atomic.Bool
	permuted := *tg
	permuted.Name = tg.Name + "/permute"
	permuted.PlanMutator = func(sid int64, steps []mgl.PlanStep) []mgl.PlanStep {
		if len(steps) > 1 {
			effective.Store(true)
		}
		return reversePlan(sid, steps)
	}
	run, err := runEngine(&permuted, EngineMGL)
	if err != nil {
		return nil, fmt.Errorf("conform: %s: permute mutant: %w", tg.Name, err)
	}
	if effective.Load() {
		out = append(out, MutantRun{
			Target:  permuted.Name,
			Kind:    "permute-plan",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no multi-step plan acquired; permute mutant skipped", tg.Name)
	}

	// The same two faults again, through the codegen path: the compiled
	// binary must flag its baked drop-all variant and its runtime permute
	// mutation. Targets outside the backend's subset (externs, non-integer
	// args) skip with a note rather than failing the in-process protocol.
	if _, _, err := nativeTarget(tg); err != nil {
		opts.Log("conform: %s: native mutants skipped: %v", tg.Name, err)
	} else {
		nruns, err := runNativeMutants(tg, ndropped, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, nruns...)
	}

	hruns, err := checkHybridMutants(tg, ndropped, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, hruns...)

	out = append(out, checkRefineMutants(tg, opts)...)
	return out, nil
}

// checkRefineMutants mutation-tests the profile-guided refinement checkers:
//
//   - refine-demote-hot: the plan a buggy refiner would emit if it demoted
//     a class whose profile shows contention. refine.Verify's
//     recompute-and-compare must reject it.
//   - refine-split-no-proof: a split whose footprint-disjointness proof
//     does not hold. The static auditor's shard re-proof must flag it.
//
// Both checks are deterministic (static recomputation, no schedules), so an
// unflagged mutant is always a checker bug, never a scheduling miss.
func checkRefineMutants(tg *oracle.Target, opts Options) []MutantRun {
	var out []MutantRun
	var and *andersen.Analysis
	if tg.C != nil {
		and = tg.C.Andersen()
	}
	if mut, hot, ok := refine.MutantDemoteHot(tg.Plan, nil); ok {
		verr := refine.Verify(tg.Prog, tg.Pts, and, tg.Plan, mut, hot, refine.Options{})
		mr := MutantRun{
			Target:  tg.Name + "/refine-demote-hot",
			Kind:    "refine-demote-hot",
			Flagged: verr != nil,
		}
		if verr != nil {
			mr.Flags = []string{verr.Error()}
		}
		out = append(out, mr)
	} else {
		opts.Log("conform: %s: no fine locks inferred; refine demote-hot mutant skipped", tg.Name)
	}
	if mut, ok := refine.MutantSplitNoProof(tg.Prog, tg.Pts, and, tg.Plan, nil); ok {
		rep := audit.Run(tg.Prog, tg.Pts, and, mut, audit.Options{})
		mr := MutantRun{
			Target:  tg.Name + "/refine-split-no-proof",
			Kind:    "refine-split-no-proof",
			Flagged: len(rep.ShardViolations) > 0,
		}
		for _, v := range rep.ShardViolations {
			mr.Flags = append(mr.Flags, v.String())
		}
		out = append(out, mr)
	} else {
		opts.Log("conform: %s: no coarse-shared class; refine split-no-proof mutant skipped", tg.Name)
	}
	return out
}

// checkHybridMutants injects three faults specific to the adaptive engine
// and requires the harness to flag each:
//
//   - hybrid-drop-fallback-locks: every plan emptied, fallback forced — the
//     pessimistic path runs uncovered, so the §4.2 checker must fire on the
//     first shared access (before any cell is meta-locked, which keeps the
//     mutant deterministic and deadlock-free).
//   - hybrid-permute-fallback-plan: fallback forced with every acquisition
//     plan reversed — the Watcher's canonical-order assertion must fire.
//   - hybrid-skip-stm-validation: fallback disabled and the TL2 runtime's
//     validation switched off — a detected-but-ignored conflict must
//     surface as an oracle flag or a non-serializable final state. The
//     fault is schedule-dependent, so the run repeats until the runtime
//     reports it actually ignored a conflict and the harness caught it.
func checkHybridMutants(tg *oracle.Target, ndropped int, opts Options) ([]MutantRun, error) {
	var out []MutantRun

	forced := hybrid.Config{AbortThreshold: hybrid.ForceFallback}
	if ndropped > 0 {
		dropped, _ := tg.DropLock("")
		dropped.Name = tg.Name + "/hybrid-drop-fallback"
		run, _, err := runHybrid(dropped, forced, false)
		if err != nil {
			return nil, fmt.Errorf("conform: %s: hybrid drop-fallback mutant: %w", tg.Name, err)
		}
		out = append(out, MutantRun{
			Target:  dropped.Name,
			Kind:    "hybrid-drop-fallback-locks",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no locks inferred; hybrid drop-fallback mutant skipped", tg.Name)
	}

	var effective atomic.Bool
	permuted := *tg
	permuted.Name = tg.Name + "/hybrid-permute-fallback"
	permuted.PlanMutator = func(sid int64, steps []mgl.PlanStep) []mgl.PlanStep {
		if len(steps) > 1 {
			effective.Store(true)
		}
		return reversePlan(sid, steps)
	}
	run, _, err := runHybrid(&permuted, forced, false)
	if err != nil {
		return nil, fmt.Errorf("conform: %s: hybrid permute-fallback mutant: %w", tg.Name, err)
	}
	if effective.Load() {
		out = append(out, MutantRun{
			Target:  permuted.Name,
			Kind:    "hybrid-permute-fallback-plan",
			Flagged: run.Flagged(),
			Flags:   run.Flags,
		})
	} else {
		opts.Log("conform: %s: no multi-step plan acquired; hybrid permute-fallback mutant skipped", tg.Name)
	}

	skipRun, err := checkSkipValidationMutant(tg, opts)
	if err != nil {
		return nil, err
	}
	if skipRun != nil {
		out = append(out, *skipRun)
	}
	return out, nil
}

// checkSkipValidationMutant runs the never-fallback hybrid engine with TL2
// validation disabled and judges each outcome against the serializable
// states. It returns nil (with a log note) when the fault never manifested
// — no conflict was ever ignored, or the truncated oracle made every
// unmatched state inconclusive.
func checkSkipValidationMutant(tg *oracle.Target, opts Options) (*MutantRun, error) {
	states := map[string]bool{}
	for _, s := range opts.States {
		states[s] = true
	}
	truncated := opts.StatesTruncated
	if len(states) == 0 {
		ser, err := serialStates(tg, opts.MaxSerializations, opts.Log)
		if err != nil {
			return nil, fmt.Errorf("conform: %s: skip-validation mutant: serialization oracle: %w", tg.Name, err)
		}
		states, truncated = ser.states, ser.truncated
	}
	cfg := hybrid.Config{AbortThreshold: hybrid.NeverFallback}
	name := tg.Name + "/hybrid-skip-validation"
	anyIgnored := false
	inconclusive := false
	const attempts = 12
	for i := 0; i < attempts; i++ {
		run, ignored, err := runHybrid(tg, cfg, true)
		if err != nil {
			return nil, fmt.Errorf("conform: %s: hybrid skip-validation mutant: %w", tg.Name, err)
		}
		if ignored == 0 {
			// No conflict arose on this schedule; the fault was inert.
			continue
		}
		anyIgnored = true
		if run.Flagged() {
			return &MutantRun{Target: name, Kind: "hybrid-skip-stm-validation", Flagged: true, Flags: run.Flags}, nil
		}
		if !states[run.State] {
			if truncated {
				inconclusive = true
				continue
			}
			return &MutantRun{
				Target: name, Kind: "hybrid-skip-stm-validation", Flagged: true,
				Flags: []string{fmt.Sprintf("non-serializable final state %q with %d ignored conflicts", run.State, ignored)},
			}, nil
		}
	}
	switch {
	case !anyIgnored:
		opts.Log("conform: %s: no conflict ignored in %d runs; hybrid skip-validation mutant skipped", tg.Name, attempts)
		return nil, nil
	case inconclusive:
		opts.Log("conform: %s: skip-validation states unmatched but oracle truncated; mutant inconclusive, skipped", tg.Name)
		return nil, nil
	}
	return &MutantRun{Target: name, Kind: "hybrid-skip-stm-validation", Flagged: false}, nil
}

// MutantsErr folds mutant runs into a verdict: nil iff every mutant was
// flagged.
func MutantsErr(runs []MutantRun) error {
	for _, r := range runs {
		if !r.Flagged {
			return fmt.Errorf("conform: mutant %s (%s) was NOT flagged — the harness missed an injected fault", r.Target, r.Kind)
		}
	}
	return nil
}
