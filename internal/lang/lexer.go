package lang

// Lexer converts source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipTrivia consumes whitespace and comments. It reports an error for an
// unterminated block comment.
func (lx *Lexer) skipTrivia() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isSpace(c):
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return errf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or an error for invalid input.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipTrivia(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.off < len(lx.src) && isIdentStart(lx.peek()) {
			return Token{}, errf(pos, "malformed number %q", lx.src[start:lx.off+1])
		}
		return Token{Kind: INT, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	lx.advance()
	two := func(second byte, yes, no Kind) Token {
		if lx.peek() == second {
			lx.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '[':
		return Token{Kind: LBrack, Pos: pos}, nil
	case ']':
		return Token{Kind: RBrack, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '=':
		return two('=', Eq, Assign), nil
	case '-':
		return two('>', Arrow, Minus), nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean ||?)", string(c))
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '!':
		return two('=', Ne, Not), nil
	case '<':
		return two('=', Le, Lt), nil
	case '>':
		return two('=', Ge, Gt), nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// Tokenize lexes the entire input, returning all tokens up to and including
// the terminating EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
