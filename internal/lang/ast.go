package lang

// Type is a surface type: a base name plus a number of pointer levels.
// Base is "int", "void", or a struct name.
type Type struct {
	Base string
	Ptr  int
}

// IsVoid reports whether the type is exactly "void" (no pointers).
func (t Type) IsVoid() bool { return t.Base == "void" && t.Ptr == 0 }

// IsPointer reports whether the type has at least one pointer level.
func (t Type) IsPointer() bool { return t.Ptr > 0 }

// Elem returns the type with one pointer level removed.
func (t Type) Elem() Type { return Type{Base: t.Base, Ptr: t.Ptr - 1} }

// String renders the type in surface syntax, e.g. "elem**".
func (t Type) String() string {
	s := t.Base
	for i := 0; i < t.Ptr; i++ {
		s += "*"
	}
	return s
}

// Field is a single struct field declaration.
type Field struct {
	Type Type
	Name string
}

// StructDecl declares a struct type.
type StructDecl struct {
	Name   string
	Fields []Field
	Pos    Pos
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructDecl) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// GlobalDecl declares a global variable with an optional initializer.
type GlobalDecl struct {
	Type Type
	Name string
	Init Expr // may be nil
	Pos  Pos
}

// Param is a function parameter.
type Param struct {
	Type Type
	Name string
}

// FuncDecl declares a function. A nil Body declares an external
// (pre-compiled) function known to the analysis only through a
// specification.
type FuncDecl struct {
	Ret    Type
	Name   string
	Params []Param
	Body   *BlockStmt // nil for extern prototypes
	Pos    Pos
}

// Program is a parsed compilation unit.
type Program struct {
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Struct returns the declaration of the named struct, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func returns the declaration of the named function, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Stmt is a surface statement.
type Stmt interface {
	stmt()
	StmtPos() Pos
}

// DeclStmt declares a local variable with an optional initializer.
type DeclStmt struct {
	Type Type
	Name string
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt assigns RHS to the lvalue LHS.
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// AtomicStmt is an atomic section.
type AtomicStmt struct {
	Body *BlockStmt
	Pos  Pos
}

// BlockStmt is a brace-delimited statement sequence.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Value Expr // may be nil
	Pos   Pos
}

// ExprStmt evaluates an expression (in practice, a call) for effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// NopStmt is the paper's "nop" padding instruction; the interpreter spends a
// unit of simulated work on it.
type NopStmt struct {
	Pos Pos
}

func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*AtomicStmt) stmt() {}
func (*BlockStmt) stmt()  {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}
func (*NopStmt) stmt()    {}

// StmtPos returns the statement's source position.
func (s *DeclStmt) StmtPos() Pos   { return s.Pos }
func (s *AssignStmt) StmtPos() Pos { return s.Pos }
func (s *IfStmt) StmtPos() Pos     { return s.Pos }
func (s *WhileStmt) StmtPos() Pos  { return s.Pos }
func (s *AtomicStmt) StmtPos() Pos { return s.Pos }
func (s *BlockStmt) StmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos   { return s.Pos }
func (s *NopStmt) StmtPos() Pos    { return s.Pos }

// Expr is a surface expression.
type Expr interface {
	expr()
	ExprPos() Pos
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// NullLit is the null pointer literal.
type NullLit struct {
	Pos Pos
}

// UnaryOp identifies a unary operator.
type UnaryOp uint8

// Unary operators.
const (
	UNot UnaryOp = iota // !x
	UNeg                // -x
)

func (op UnaryOp) String() string {
	if op == UNot {
		return "!"
	}
	return "-"
}

// Unary applies a unary operator (! or -).
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// Deref dereferences a pointer: *X.
type Deref struct {
	X   Expr
	Pos Pos
}

// AddrOf takes the address of a variable: &x.
type AddrOf struct {
	Name string
	Pos  Pos
}

// BinaryOp identifies a binary operator.
type BinaryOp uint8

// Binary operators.
const (
	BAdd BinaryOp = iota
	BSub
	BMul
	BDiv
	BMod
	BEq
	BNe
	BLt
	BLe
	BGt
	BGe
	BAnd
	BOr
)

var binOpNames = [...]string{
	BAdd: "+", BSub: "-", BMul: "*", BDiv: "/", BMod: "%",
	BEq: "==", BNe: "!=", BLt: "<", BLe: "<=", BGt: ">", BGe: ">=",
	BAnd: "&&", BOr: "||",
}

func (op BinaryOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean.
func (op BinaryOp) IsComparison() bool { return op >= BEq && op <= BGe }

// Binary applies a binary operator.
type Binary struct {
	Op   BinaryOp
	L, R Expr
	Pos  Pos
}

// FieldAccess is X->Name.
type FieldAccess struct {
	X    Expr
	Name string
	Pos  Pos
}

// IndexExpr is X[I].
type IndexExpr struct {
	X   Expr
	I   Expr
	Pos Pos
}

// NewExpr allocates a struct (new T) or an array (new T[Len]).
type NewExpr struct {
	Type Type
	Len  Expr // nil for single-object allocation
	Pos  Pos
}

// CallExpr calls a named function.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Ident) expr()       {}
func (*IntLit) expr()      {}
func (*NullLit) expr()     {}
func (*Unary) expr()       {}
func (*Deref) expr()       {}
func (*AddrOf) expr()      {}
func (*Binary) expr()      {}
func (*FieldAccess) expr() {}
func (*IndexExpr) expr()   {}
func (*NewExpr) expr()     {}
func (*CallExpr) expr()    {}

// ExprPos returns the expression's source position.
func (e *Ident) ExprPos() Pos       { return e.Pos }
func (e *IntLit) ExprPos() Pos      { return e.Pos }
func (e *NullLit) ExprPos() Pos     { return e.Pos }
func (e *Unary) ExprPos() Pos       { return e.Pos }
func (e *Deref) ExprPos() Pos       { return e.Pos }
func (e *AddrOf) ExprPos() Pos      { return e.Pos }
func (e *Binary) ExprPos() Pos      { return e.Pos }
func (e *FieldAccess) ExprPos() Pos { return e.Pos }
func (e *IndexExpr) ExprPos() Pos   { return e.Pos }
func (e *NewExpr) ExprPos() Pos     { return e.Pos }
func (e *CallExpr) ExprPos() Pos    { return e.Pos }
