// Package lang implements the front end for the mini-C input language of
// "Inferring Locks for Atomic Sections" (Cherem, Chilimbi, Gulwani; PLDI
// 2008). The surface syntax is a small C dialect with struct declarations,
// pointers, heap allocation and atomic sections; it lowers to the paper's
// Figure 3 core language (see package ir).
//
// Grammar (EBNF):
//
//	program    = { structDecl | globalDecl | funcDecl } .
//	structDecl = "struct" IDENT "{" { type IDENT ";" } "}" .
//	type       = ( "int" | "void" | IDENT ) { "*" } .
//	globalDecl = type IDENT [ "=" expr ] ";" .
//	funcDecl   = type IDENT "(" [ param { "," param } ] ")" block .
//	param      = type IDENT .
//	block      = "{" { stmt } "}" .
//	stmt       = type IDENT [ "=" expr ] ";"            (local declaration)
//	           | lvalue "=" expr ";"                    (assignment)
//	           | "if" "(" expr ")" stmt [ "else" stmt ]
//	           | "while" "(" expr ")" stmt
//	           | "atomic" block
//	           | "return" [ expr ] ";"
//	           | "nop" ";"
//	           | expr ";"                               (call statement)
//	           | block .
//	expr       = binary operators with C precedence:
//	             "||" "&&" | "==" "!=" "<" "<=" ">" ">=" | "+" "-" | "*" "/" "%" .
//	unary      = ( "!" | "-" | "*" ) unary | "&" IDENT | postfix .
//	postfix    = primary { "->" IDENT | "[" expr "]" } .
//	primary    = IDENT | IDENT "(" [ expr { "," expr } ] ")" | INT | "null"
//	           | "new" type [ "[" expr "]" ] | "(" expr ")" .
//
// Comments use // and /* */.
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	// Keywords.
	KwStruct
	KwInt
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwAtomic
	KwReturn
	KwNew
	KwNull
	KwNop
	// Punctuation and operators.
	LBrace
	RBrace
	LParen
	RParen
	LBrack
	RBrack
	Semi
	Comma
	Assign
	Arrow
	Amp
	Star
	Plus
	Minus
	Slash
	Percent
	Not
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	AndAnd
	OrOr
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer",
	KwStruct: "struct", KwInt: "int", KwVoid: "void", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwAtomic: "atomic", KwReturn: "return",
	KwNew: "new", KwNull: "null", KwNop: "nop",
	LBrace: "{", RBrace: "}", LParen: "(", RParen: ")",
	LBrack: "[", RBrack: "]", Semi: ";", Comma: ",", Assign: "=",
	Arrow: "->", Amp: "&", Star: "*", Plus: "+", Minus: "-",
	Slash: "/", Percent: "%", Not: "!", Eq: "==", Ne: "!=",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", AndAnd: "&&", OrOr: "||",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"struct": KwStruct, "int": KwInt, "void": KwVoid, "if": KwIf,
	"else": KwElse, "while": KwWhile, "atomic": KwAtomic,
	"return": KwReturn, "new": KwNew, "null": KwNull, "nop": KwNop,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // identifier or integer text; empty for fixed tokens
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Text
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
