package lang

import "strconv"

// Parser builds an AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete program from source text.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		if p.at(KwStruct) {
			s, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			if prog.Struct(s.Name) != nil {
				return nil, errf(s.Pos, "duplicate struct %q", s.Name)
			}
			prog.Structs = append(prog.Structs, s)
			continue
		}
		// Both globals and functions begin with a type and a name; decide by
		// the token after the name.
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			if prog.Func(fn.Name) != nil {
				return nil, errf(fn.Pos, "duplicate function %q", fn.Name)
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g := &GlobalDecl{Type: typ, Name: name.Text, Pos: name.Pos}
		if p.accept(Assign) {
			g.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		for _, other := range prog.Globals {
			if other.Name == g.Name {
				return nil, errf(g.Pos, "duplicate global %q", g.Name)
			}
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *Parser) parseStruct() (*StructDecl, error) {
	pos := p.next().Pos // struct
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	s := &StructDecl{Name: name.Text, Pos: pos}
	for !p.accept(RBrace) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		if s.FieldIndex(fn.Text) >= 0 {
			return nil, errf(fn.Pos, "duplicate field %q in struct %q", fn.Text, name.Text)
		}
		s.Fields = append(s.Fields, Field{Type: ft, Name: fn.Text})
	}
	return s, nil
}

// typeStart reports whether the current token can begin a type.
func (p *Parser) typeStart() bool {
	switch p.cur().Kind {
	case KwInt, KwVoid:
		return true
	case IDENT:
		return false // only known via context; handled by callers
	}
	return false
}

func (p *Parser) parseType() (Type, error) {
	t := p.cur()
	var base string
	switch t.Kind {
	case KwInt:
		base = "int"
	case KwVoid:
		base = "void"
	case IDENT:
		base = t.Text
	default:
		return Type{}, errf(t.Pos, "expected type, found %s", t)
	}
	p.next()
	typ := Type{Base: base}
	for p.accept(Star) {
		typ.Ptr++
	}
	return typ, nil
}

func (p *Parser) parseFuncRest(ret Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Ret: ret, Name: name.Text, Pos: name.Pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Type: pt, Name: pn.Text})
			if p.accept(RParen) {
				break
			}
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
	}
	// A prototype (";" instead of a body) declares an external,
	// pre-compiled function; the analysis covers it with a function
	// specification (§4.3).
	if p.accept(Semi) {
		return fn, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.accept(RBrace) {
		if p.at(EOF) {
			return nil, errf(p.cur().Pos, "unterminated block (missing })")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, st)
	}
	return b, nil
}

// isDeclStart reports whether the upcoming tokens look like a local variable
// declaration: a type (keyword type, or IDENT followed by stars and another
// IDENT, or IDENT IDENT).
func (p *Parser) isDeclStart() bool {
	if p.typeStart() {
		return true
	}
	if !p.at(IDENT) {
		return false
	}
	// IDENT ("*")* IDENT  is a declaration using a struct type.
	i := p.pos + 1
	for i < len(p.toks) && p.toks[i].Kind == Star {
		i++
	}
	return i < len(p.toks) && p.toks[i].Kind == IDENT && i > p.pos
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
		if p.accept(KwElse) {
			st.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
	case KwAtomic:
		p.next()
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Body: body, Pos: t.Pos}, nil
	case KwReturn:
		p.next()
		st := &ReturnStmt{Pos: t.Pos}
		if !p.at(Semi) {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return st, nil
	case KwNop:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &NopStmt{Pos: t.Pos}, nil
	}
	if p.isDeclStart() {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		st := &DeclStmt{Type: typ, Name: name.Text, Pos: name.Pos}
		if p.accept(Assign) {
			st.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return st, nil
	}
	// Assignment or expression statement.
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(Assign) {
		if !isLvalue(lhs) {
			return nil, errf(lhs.ExprPos(), "left-hand side of assignment is not an lvalue")
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Pos: t.Pos}, nil
	}
	if _, ok := lhs.(*CallExpr); !ok {
		return nil, errf(lhs.ExprPos(), "expression statement must be a call")
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: lhs, Pos: t.Pos}, nil
}

// isLvalue reports whether e may appear on the left of an assignment.
func isLvalue(e Expr) bool {
	switch e.(type) {
	case *Ident, *Deref, *FieldAccess, *IndexExpr:
		return true
	}
	return false
}

// Operator precedence levels, loosest first.
var binPrec = map[Kind]int{
	OrOr: 1, AndAnd: 2,
	Eq: 3, Ne: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

var binOpOf = map[Kind]BinaryOp{
	OrOr: BOr, AndAnd: BAnd, Eq: BEq, Ne: BNe,
	Lt: BLt, Le: BLe, Gt: BGt, Ge: BGe,
	Plus: BAdd, Minus: BSub, Star: BMul, Slash: BDiv, Percent: BMod,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: binOpOf[op.Kind], L: lhs, R: rhs, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Not:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UNot, X: x, Pos: t.Pos}, nil
	case Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UNeg, X: x, Pos: t.Pos}, nil
	case Star:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Deref{X: x, Pos: t.Pos}, nil
	case Amp:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, errf(t.Pos, "& must be applied to a variable name")
		}
		return &AddrOf{Name: name.Text, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(Arrow):
			pos := p.next().Pos
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			e = &FieldAccess{X: e, Name: name.Text, Pos: pos}
		case p.at(LBrack):
			pos := p.next().Pos
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			e = &IndexExpr{X: e, I: idx, Pos: pos}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case IDENT:
		p.next()
		if p.at(LParen) {
			p.next()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			if !p.accept(RParen) {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(RParen) {
						break
					}
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid integer %q", t.Text)
		}
		return &IntLit{Value: v, Pos: t.Pos}, nil
	case KwNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case KwNew:
		p.next()
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		ne := &NewExpr{Type: typ, Pos: t.Pos}
		if p.accept(LBrack) {
			ne.Len, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
		}
		return ne, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", t)
}
