package lang

import (
	"fmt"
	"strings"
)

// Printer renders an AST back to surface syntax. The zero value is a valid
// printer. AtomicHook, when non-nil, is consulted for every atomic section:
// returning replacement header lines (printed in place of the "atomic {"
// keyword) lets the transformation phase emit acquireAll/releaseAll calls
// while reusing the printer for everything else.
type Printer struct {
	// AtomicHook returns (headerLines, footerLines, replace). When replace is
	// true the section prints as "{ headerLines... body footerLines... }"
	// instead of "atomic { body }".
	AtomicHook func(*AtomicStmt) (header, footer []string, replace bool)

	b      strings.Builder
	indent int
}

// PrintProgram renders an entire program.
func PrintProgram(p *Program) string {
	var pr Printer
	return pr.Program(p)
}

// Program renders prog and returns the accumulated text.
func (pr *Printer) Program(prog *Program) string {
	pr.b.Reset()
	for _, s := range prog.Structs {
		pr.structDecl(s)
	}
	if len(prog.Structs) > 0 && (len(prog.Globals) > 0 || len(prog.Funcs) > 0) {
		pr.nl()
	}
	for _, g := range prog.Globals {
		pr.line(pr.globalText(g))
	}
	if len(prog.Globals) > 0 && len(prog.Funcs) > 0 {
		pr.nl()
	}
	for i, f := range prog.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.funcDecl(f)
	}
	return pr.b.String()
}

func (pr *Printer) nl() { pr.b.WriteByte('\n') }

func (pr *Printer) line(s string) {
	for i := 0; i < pr.indent; i++ {
		pr.b.WriteString("  ")
	}
	pr.b.WriteString(s)
	pr.b.WriteByte('\n')
}

func (pr *Printer) structDecl(s *StructDecl) {
	pr.line("struct " + s.Name + " {")
	pr.indent++
	for _, f := range s.Fields {
		pr.line(f.Type.String() + " " + f.Name + ";")
	}
	pr.indent--
	pr.line("}")
}

func (pr *Printer) globalText(g *GlobalDecl) string {
	s := g.Type.String() + " " + g.Name
	if g.Init != nil {
		s += " = " + ExprString(g.Init)
	}
	return s + ";"
}

func (pr *Printer) funcDecl(f *FuncDecl) {
	var params []string
	for _, p := range f.Params {
		params = append(params, p.Type.String()+" "+p.Name)
	}
	if f.Body == nil {
		pr.line(f.Ret.String() + " " + f.Name + "(" + strings.Join(params, ", ") + ");")
		return
	}
	pr.line(f.Ret.String() + " " + f.Name + "(" + strings.Join(params, ", ") + ") {")
	pr.indent++
	for _, st := range f.Body.Stmts {
		pr.stmt(st)
	}
	pr.indent--
	pr.line("}")
}

func (pr *Printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		txt := st.Type.String() + " " + st.Name
		if st.Init != nil {
			txt += " = " + ExprString(st.Init)
		}
		pr.line(txt + ";")
	case *AssignStmt:
		pr.line(ExprString(st.LHS) + " = " + ExprString(st.RHS) + ";")
	case *IfStmt:
		pr.line("if (" + ExprString(st.Cond) + ") {")
		pr.indent++
		pr.stmtsOf(st.Then)
		pr.indent--
		if st.Else != nil {
			pr.line("} else {")
			pr.indent++
			pr.stmtsOf(st.Else)
			pr.indent--
		}
		pr.line("}")
	case *WhileStmt:
		pr.line("while (" + ExprString(st.Cond) + ") {")
		pr.indent++
		pr.stmtsOf(st.Body)
		pr.indent--
		pr.line("}")
	case *AtomicStmt:
		if pr.AtomicHook != nil {
			if header, footer, replace := pr.AtomicHook(st); replace {
				pr.line("{")
				pr.indent++
				for _, h := range header {
					pr.line(h)
				}
				for _, inner := range st.Body.Stmts {
					pr.stmt(inner)
				}
				for _, f := range footer {
					pr.line(f)
				}
				pr.indent--
				pr.line("}")
				return
			}
		}
		pr.line("atomic {")
		pr.indent++
		for _, inner := range st.Body.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *BlockStmt:
		pr.line("{")
		pr.indent++
		for _, inner := range st.Stmts {
			pr.stmt(inner)
		}
		pr.indent--
		pr.line("}")
	case *ReturnStmt:
		if st.Value != nil {
			pr.line("return " + ExprString(st.Value) + ";")
		} else {
			pr.line("return;")
		}
	case *ExprStmt:
		pr.line(ExprString(st.X) + ";")
	case *NopStmt:
		pr.line("nop;")
	default:
		panic(fmt.Sprintf("lang: unknown statement %T", s))
	}
}

// stmtsOf prints the statements of s, flattening a block body so nested
// braces are not doubled.
func (pr *Printer) stmtsOf(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		for _, inner := range b.Stmts {
			pr.stmt(inner)
		}
		return
	}
	pr.stmt(s)
}

// ExprString renders an expression in surface syntax, parenthesizing enough
// to re-parse identically.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *NullLit:
		return "null"
	case *Unary:
		return x.Op.String() + exprOperand(x.X)
	case *Deref:
		return "*" + exprOperand(x.X)
	case *AddrOf:
		return "&" + x.Name
	case *Binary:
		return exprOperand(x.L) + " " + x.Op.String() + " " + exprOperand(x.R)
	case *FieldAccess:
		return exprOperand(x.X) + "->" + x.Name
	case *IndexExpr:
		return exprOperand(x.X) + "[" + ExprString(x.I) + "]"
	case *NewExpr:
		if x.Len != nil {
			return "new " + x.Type.String() + "[" + ExprString(x.Len) + "]"
		}
		return "new " + x.Type.String()
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

// exprOperand renders e, wrapping compound expressions in parentheses so the
// output re-parses with the same structure regardless of precedence (unary
// forms must be wrapped too: they cannot be postfix bases unparenthesized).
func exprOperand(e Expr) string {
	switch e.(type) {
	case *Binary, *Unary, *Deref, *AddrOf:
		return "(" + ExprString(e) + ")"
	default:
		return ExprString(e)
	}
}
