package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockinfer/internal/progen"
)

// fuzzSeeds collects the mini-C corpus as the fuzzing seed set: every
// .minic program under internal/progs/src plus the sources embedded in the
// examples (extracted from their `const src = ...` raw literals).
func fuzzSeeds(f *testing.F) {
	matches, err := filepath.Glob(filepath.Join("..", "progs", "src", "*.minic"))
	if err != nil {
		f.Fatalf("globbing corpus: %v", err)
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("reading %s: %v", path, err)
		}
		f.Add(string(data))
	}
	examples, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	if err != nil {
		f.Fatalf("globbing examples: %v", err)
	}
	for _, path := range examples {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("reading %s: %v", path, err)
		}
		src := string(data)
		// Embedded mini-C lives in backquoted `const src = ...` literals.
		if i := strings.Index(src, "const src = `"); i >= 0 {
			rest := src[i+len("const src = `"):]
			if j := strings.IndexByte(rest, '`'); j >= 0 {
				f.Add(rest[:j])
			}
		}
	}
	// Generated programs: the conformance harness's concurrent workloads
	// and a small SPEC-style program, so parser fuzzing starts from the
	// exact syntax the generators emit (nested sections, pointer-chain
	// descriptors, struct-heavy bodies).
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed}))
	}
	f.Add(progen.Generate(progen.Spec{Name: "fuzzseed", KLoC: 0.5, Seed: 42}))
	// A few handwritten seeds covering the syntax the corpus exercises
	// lightly: atomic blocks, struct declarations, pointer chains.
	f.Add("int g; void f() { atomic { g = g + 1; } }")
	f.Add("struct n { int v; struct n *next; }; struct n *h; void w(int k) { atomic { h->v = k; } }")
	f.Add("void main() { while (1) { if (0) break; } }")
}

// FuzzParse hammers the mini-C front end: any input may be rejected with an
// error but must never panic, and every accepted program must round-trip —
// printing the AST and reparsing it yields the same printed form (the
// printer and parser agree on the language).
func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := PrintProgram(prog)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n--- printed ---\n%s", err, printed)
		}
		if reprinted := PrintProgram(again); reprinted != printed {
			t.Fatalf("print/parse round trip not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, reprinted)
		}
	})
}
