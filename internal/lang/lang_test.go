package lang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	toks, err := Tokenize(`while (x->next != null) { x = x->next; } /* c */ // d`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{KwWhile, LParen, IDENT, Arrow, IDENT, Ne, KwNull, RParen,
		LBrace, IDENT, Assign, IDENT, Arrow, IDENT, Semi, RBrace, EOF}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("positions = %v, %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", "a | b", "123abc", "a $ b"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestParseStructureAndPrint(t *testing.T) {
	src := `
struct elem { elem* next; int* data; }
int g = 4;
void f(elem* e, int n) {
  atomic {
    e->next = null;
  }
  if (n > 0) {
    f(e, n - 1);
  } else {
    while (n < 10) {
      n = n + 1;
    }
  }
  return;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Structs) != 1 || len(p.Globals) != 1 || len(p.Funcs) != 1 {
		t.Fatalf("wrong shape: %d structs %d globals %d funcs",
			len(p.Structs), len(p.Globals), len(p.Funcs))
	}
	// Printing then reparsing must be a fixed point of printing.
	once := PrintProgram(p)
	p2, err := Parse(once)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, once)
	}
	twice := PrintProgram(p2)
	if once != twice {
		t.Errorf("print not stable:\n%s\nvs\n%s", once, twice)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing semi":     "void f() { int x = 1 }",
		"bad lvalue":       "void f() { 1 = 2; }",
		"expr stmt":        "void f() { 1 + 2; }",
		"unterminated":     "void f() {",
		"dup struct":       "struct a { int x; } struct a { int y; }",
		"dup field":        "struct a { int x; int x; }",
		"dup func":         "void f() {} void f() {}",
		"dup global":       "int g; int g;",
		"addr of non-name": "void f() { int* p = &(1); }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestPrecedence(t *testing.T) {
	p, err := Parse("void f() { int x = 1 + 2 * 3 == 7 && 1 < 2; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := p.Funcs[0].Body.Stmts[0].(*DeclStmt)
	top, ok := decl.Init.(*Binary)
	if !ok || top.Op != BAnd {
		t.Fatalf("top operator = %T/%v, want &&", decl.Init, top)
	}
	l := top.L.(*Binary)
	if l.Op != BEq {
		t.Errorf("left of && is %v, want ==", l.Op)
	}
	sum := l.L.(*Binary)
	if sum.Op != BAdd {
		t.Errorf("left of == is %v, want +", sum.Op)
	}
	if mul := sum.R.(*Binary); mul.Op != BMul {
		t.Errorf("right of + is %v, want *", mul.Op)
	}
}

// genExpr builds a random expression tree of bounded depth.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return &Ident{Name: string(rune('a' + r.Intn(5)))}
		case 1:
			return &IntLit{Value: int64(r.Intn(100))}
		default:
			return &NullLit{}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &Unary{Op: UnaryOp(r.Intn(2)), X: genExpr(r, depth-1)}
	case 1:
		return &Deref{X: genExpr(r, depth-1)}
	case 2:
		return &AddrOf{Name: string(rune('a' + r.Intn(5)))}
	case 3:
		return &Binary{Op: BinaryOp(r.Intn(13)), L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 4:
		return &FieldAccess{X: genExpr(r, depth-1), Name: "fld"}
	case 5:
		return &IndexExpr{X: genExpr(r, depth-1), I: genExpr(r, depth-1)}
	case 6:
		return &CallExpr{Name: "fn", Args: []Expr{genExpr(r, depth-1)}}
	default:
		return &NewExpr{Type: Type{Base: "t", Ptr: 1}}
	}
}

// TestExprPrintParseRoundTrip: printing an arbitrary expression and parsing
// it back yields the same printed form (associativity and precedence are
// preserved by the printer's parenthesization).
func TestExprPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(seed int64, depth uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		e := genExpr(rr, int(depth%4)+1)
		printed := ExprString(e)
		src := "void f() { x = " + printed + "; }"
		p, err := Parse(src)
		if err != nil {
			t.Logf("reparse of %q failed: %v", printed, err)
			return false
		}
		back := p.Funcs[0].Body.Stmts[0].(*AssignStmt).RHS
		return ExprString(back) == printed
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCommentHandling(t *testing.T) {
	src := `
// leading comment
struct s { int x; } /* trailing */
void f(s* p) {
  /* multi
     line */
  p->x = 1; // tail
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"int":    {Base: "int"},
		"elem**": {Base: "elem", Ptr: 2},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type.String() = %q, want %q", got, want)
		}
	}
}

func TestAtomicNesting(t *testing.T) {
	src := "void f() { atomic { atomic { nop; } } }"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := p.Funcs[0].Body.Stmts[0].(*AtomicStmt)
	if _, ok := outer.Body.Stmts[0].(*AtomicStmt); !ok {
		t.Error("nested atomic not parsed")
	}
	if !strings.Contains(PrintProgram(p), "atomic {") {
		t.Error("printer lost atomic")
	}
}
