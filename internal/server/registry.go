package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"lockinfer/internal/locks"
	"lockinfer/internal/pipeline"
)

// Program is one registered compilation, shared by every tenant that
// submitted the same source at the same k.
type Program struct {
	ID   string
	Name string
	K    int
	C    *pipeline.Compilation
	// Plan is the inferred per-section lock plan, computed once at
	// registration and treated as immutable (mutant runs copy it).
	Plan map[int]locks.Set
}

// Locks is the total lock count over the program's section plans.
func (p *Program) Locks() int {
	n := 0
	for _, s := range p.Plan {
		n += len(s)
	}
	return n
}

// registry holds the daemon's programs and worlds. Programs are
// content-addressed (source hash + k) so identical submissions from
// different tenants resolve to one entry; concurrent submissions of a not-
// yet-registered program collapse onto a single compile via the inflight
// map (singleflight).
type registry struct {
	mu       sync.Mutex
	programs map[string]*Program  // by program id
	inflight map[string]*compcall // by program id, while compiling
	worlds   map[string]*World    // by world id
	worldSeq int64
}

// compcall is one in-flight compile that concurrent identical submissions
// wait on.
type compcall struct {
	done chan struct{}
	prog *Program
	err  error
}

func newRegistry() *registry {
	return &registry{
		programs: map[string]*Program{},
		inflight: map[string]*compcall{},
		worlds:   map[string]*World{},
	}
}

// programID content-addresses a submission.
func programID(source string, k int) string {
	sum := sha256.Sum256([]byte(source))
	return fmt.Sprintf("p-%s-k%d", hex.EncodeToString(sum[:6]), k)
}

// resolve returns the registered program, compiling it exactly once per id
// even under concurrent identical submissions. The boolean reports whether
// this call reused an existing registration or joined an in-flight compile
// (deduped) rather than running the compile itself.
func (r *registry) resolve(s *Server, req SubmitRequest) (*Program, bool, error) {
	opts := pipeline.Options{Name: req.Name, Cache: s.cache, K: req.K, KIsSet: req.KSet}
	// The id uses the effective k, so "k unset" and an explicit k=3
	// submission of the same source share one program.
	k := req.K
	if k == 0 && !req.KSet {
		k = pipeline.DefaultK
	}
	id := programID(req.Source, k)

	r.mu.Lock()
	if p, ok := r.programs[id]; ok {
		r.mu.Unlock()
		return p, true, nil
	}
	if c, ok := r.inflight[id]; ok {
		r.mu.Unlock()
		<-c.done
		return c.prog, true, c.err
	}
	call := &compcall{done: make(chan struct{})}
	r.inflight[id] = call
	r.mu.Unlock()

	s.metrics.Compiles.Add(1)
	c, err := pipeline.Compile(req.Source, opts)
	var prog *Program
	if err == nil {
		prog = &Program{ID: id, Name: req.Name, K: c.K, C: c, Plan: c.Plan()}
	}
	call.prog, call.err = prog, err

	r.mu.Lock()
	if err == nil {
		r.programs[id] = prog
		s.metrics.Programs.Add(1)
	}
	delete(r.inflight, id)
	r.mu.Unlock()
	close(call.done)
	return prog, false, err
}

// program looks up a registered program.
func (r *registry) program(id string) *Program {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.programs[id]
}

// addWorld registers a world under a fresh id.
func (r *registry) addWorld(w *World) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.worldSeq++
	w.ID = fmt.Sprintf("w-%d", r.worldSeq)
	r.worlds[w.ID] = w
	return w.ID
}

// world looks up a world.
func (r *registry) world(id string) *World {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.worlds[id]
}

// allWorlds snapshots the world list (metrics aggregation).
func (r *registry) allWorlds() []*World {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*World, 0, len(r.worlds))
	for _, w := range r.worlds {
		out = append(out, w)
	}
	return out
}

// counts reports the registry's sizes for /healthz.
func (r *registry) counts() (programs, worlds int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.programs)), int64(len(r.worlds))
}
