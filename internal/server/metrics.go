package server

import (
	"sync/atomic"

	"lockinfer/internal/locks"
)

// Metrics is the daemon's counter set, written lock-free on the request
// paths and snapshotted by /metrics. Gauges (InFlight, Queued) track the
// admission controller's live occupancy; everything else is monotonic.
type Metrics struct {
	// Requests counts every HTTP request routed to a handler.
	Requests atomic.Int64
	// Programs counts distinct registered programs; Compiles counts actual
	// pipeline compiles (submissions collapsed by the singleflight or
	// resolved from the registry never recompile); CompileDedups counts
	// submissions that joined an identical in-flight or completed compile.
	Programs      atomic.Int64
	Compiles      atomic.Int64
	CompileDedups atomic.Int64
	// Worlds counts created worlds.
	Worlds atomic.Int64
	// Executes counts completed execute requests; ExecuteErrors those whose
	// run returned oracle flags or failed; MutantRuns / MutantFlagged the
	// fault-injected executions and how many the oracle caught.
	Executes      atomic.Int64
	ExecuteErrors atomic.Int64
	MutantRuns    atomic.Int64
	MutantFlagged atomic.Int64
	// Refines counts execute requests that rewrote a world's plan through
	// the profile-guided refinement pass.
	Refines atomic.Int64
	// Rejected counts requests turned away by backpressure (queue full or
	// draining); Timeouts requests that hit their deadline while executing;
	// Detached executions still running after their request timed out.
	Rejected atomic.Int64
	Timeouts atomic.Int64
	Detached atomic.Int64
	// InFlight / Queued are the admission controller's gauges.
	InFlight atomic.Int64
	Queued   atomic.Int64
}

// MetricsSnapshot is the /metrics payload: the counter values plus the
// shared pipeline cache and hybrid-policy statistics gathered at snapshot
// time.
type MetricsSnapshot struct {
	Requests      int64 `json:"requests"`
	Programs      int64 `json:"programs"`
	Compiles      int64 `json:"compiles"`
	CompileDedups int64 `json:"compile_dedups"`
	Worlds        int64 `json:"worlds"`
	Executes      int64 `json:"executes"`
	ExecuteErrors int64 `json:"execute_errors"`
	MutantRuns    int64 `json:"mutant_runs"`
	MutantFlagged int64 `json:"mutant_flagged"`
	Refines       int64 `json:"refines"`
	Rejected      int64 `json:"rejected"`
	Timeouts      int64 `json:"timeouts"`
	Detached      int64 `json:"detached"`
	InFlight      int64 `json:"in_flight"`
	Queued        int64 `json:"queued"`
	// CacheHits/CacheMisses are the shared pipeline artifact cache's
	// counters; CacheHitRate is hits/(hits+misses), 0 when idle.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// EngineFallbacks sums the hybrid worlds' lock-plan fallbacks;
	// OptimisticRuns/PessimisticRuns the adaptive policies' mode counters.
	EngineFallbacks int64 `json:"engine_fallbacks"`
	OptimisticRuns  int64 `json:"optimistic_runs"`
	PessimisticRuns int64 `json:"pessimistic_runs"`
	// WorldProfiles maps world ids to their live runtime lock profiles
	// (locks.Profile JSON: per-lock acquire/wait counters, per-section
	// contention) — the feedback artifact the refinement pass consumes.
	// Native worlds, whose executions happen out of process, are absent.
	WorldProfiles map[string]*locks.Profile `json:"world_profiles,omitempty"`
}

// snapshot folds the live counters and the registry's cache/policy state
// into one payload.
func (s *Server) snapshotMetrics() MetricsSnapshot {
	m := &s.metrics
	snap := MetricsSnapshot{
		Requests:      m.Requests.Load(),
		Programs:      m.Programs.Load(),
		Compiles:      m.Compiles.Load(),
		CompileDedups: m.CompileDedups.Load(),
		Worlds:        m.Worlds.Load(),
		Executes:      m.Executes.Load(),
		ExecuteErrors: m.ExecuteErrors.Load(),
		MutantRuns:    m.MutantRuns.Load(),
		MutantFlagged: m.MutantFlagged.Load(),
		Refines:       m.Refines.Load(),
		Rejected:      m.Rejected.Load(),
		Timeouts:      m.Timeouts.Load(),
		Detached:      m.Detached.Load(),
		InFlight:      m.InFlight.Load(),
		Queued:        m.Queued.Load(),
	}
	snap.CacheHits, snap.CacheMisses = s.cache.Stats()
	if total := snap.CacheHits + snap.CacheMisses; total > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(total)
	}
	for _, w := range s.registry.allWorlds() {
		if p := w.profile(); p != nil {
			if snap.WorldProfiles == nil {
				snap.WorldProfiles = map[string]*locks.Profile{}
			}
			snap.WorldProfiles[w.ID] = p
		}
		if w.policy == nil {
			continue
		}
		st := w.policy.Stats()
		snap.EngineFallbacks += st.Fallbacks
		snap.OptimisticRuns += st.OptRuns
		snap.PessimisticRuns += st.PessRuns
	}
	return snap
}
