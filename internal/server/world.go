package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lockinfer/internal/codegen"
	"lockinfer/internal/hybrid"
	"lockinfer/internal/interp"
	"lockinfer/internal/locks"
	"lockinfer/internal/mgl"
	"lockinfer/internal/oracle"
	"lockinfer/internal/refine"
	"lockinfer/internal/stm"
	"lockinfer/internal/transform"
)

// Engine names accepted by WorldRequest.Engine.
const (
	EngineMGL    = "mgl"
	EngineSTM    = "stm"
	EngineHybrid = "hybrid"
	EngineNative = "native"
)

// Engines lists the selectable execution engines.
func Engines() []string { return []string{EngineMGL, EngineSTM, EngineHybrid, EngineNative} }

// World is one long-lived program instance: globals initialized and setup
// run once, then mutated by every execute request routed to it. Concurrent
// requests run concurrently — their threads interleave inside the one
// machine exactly like the threads of a single run — while fingerprinting
// takes the write side of the lock and only proceeds quiescent.
//
// Native worlds are the exception: the compiled binary runs out of
// process, so each execute replays setup into a fresh state and returns
// its own fingerprint. They exist to serve the native engine through the
// same API (and to share the content-addressed build cache), not to hold
// long-lived state.
type World struct {
	ID      string
	Tenant  string
	Engine  string
	Program *Program

	m      *interp.Machine
	watch  *mgl.Watcher
	rt     *stm.Runtime
	policy *hybrid.Policy

	native codegen.Program
	setup  *interp.ThreadSpec

	// mu orders executions (read side) against fingerprinting (write
	// side). Execution goroutines hold the read lock for their full run —
	// even after their request timed out and detached — so the write side
	// always observes a quiescent machine.
	mu sync.RWMutex
	// nextTID hands out machine thread ids. Ids are never reused: the
	// checker's allocated-in-this-section exemption keys on (thread id,
	// epoch), so recycling ids across requests could alias a dead thread's
	// allocations onto a live one.
	nextTID  atomic.Int64
	executes atomic.Int64
	detached atomic.Int64
	refines  atomic.Int64
}

// execResult is one completed execution.
type execResult struct {
	elapsed time.Duration
	flags   []string
	state   string // native runs only
}

// newWorld builds a world over a registered program. Setup (and for
// in-process engines the global initializer) runs to completion before the
// world is visible.
func newWorld(tenant string, p *Program, engine string, setup *interp.ThreadSpec) (*World, error) {
	w := &World{Tenant: tenant, Engine: engine, Program: p, setup: setup}
	switch engine {
	case EngineNative:
		if err := codegen.Unsupported(p.C.Program); err != nil {
			return nil, fmt.Errorf("program %s cannot run natively: %w", p.ID, err)
		}
		if setup != nil {
			if _, err := nativeSpec(*setup); err != nil {
				return nil, err
			}
		}
		w.native = codegen.Program{
			Name:     p.Name,
			Prog:     p.C.Program,
			Pts:      p.C.Points,
			Variants: codegen.DefaultVariants(p.Plan),
		}
		return w, nil
	case EngineMGL, EngineSTM, EngineHybrid:
	default:
		return nil, fmt.Errorf("unknown engine %q (have mgl, stm, hybrid, native)", engine)
	}

	m := interp.NewMachine(p.C.Program, p.C.Points, p.Plan)
	// Every in-process world profiles its lock runtime from birth: the
	// per-world locks.Profile under GET /metrics and the refine execute
	// option both feed off these counters.
	m.EnableProfiling()
	switch engine {
	case EngineMGL:
		m.Checked = true
		w.watch = mgl.NewWatcher()
		m.Manager().SetWatcher(w.watch)
	case EngineSTM:
		w.rt = stm.New()
		m.UseSTM(w.rt)
	case EngineHybrid:
		m.Checked = true
		w.rt = stm.New()
		w.policy = hybrid.NewPolicy(hybrid.Config{})
		m.UseHybrid(w.rt, w.policy)
		w.watch = mgl.NewWatcher()
		m.Manager().SetWatcher(w.watch)
	}
	if err := m.Init(); err != nil {
		return nil, fmt.Errorf("init: %w", err)
	}
	if setup != nil {
		if _, err := m.Call(0, setup.Fn, setup.Args); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	w.m = m
	return w, nil
}

// execute runs the request's threads against the world's live state and
// returns the run outcome. It blocks until every thread finishes; request
// timeouts are the caller's concern (the handler detaches, the execution
// keeps its read lock until done).
func (w *World) execute(specs []interp.ThreadSpec) (*execResult, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	start := time.Now()
	res := &execResult{}
	if w.Engine == EngineNative {
		opts := codegen.RunOptions{Threads: make([]codegen.Spec, 0, len(specs))}
		if w.setup != nil {
			s, _ := nativeSpec(*w.setup)
			opts.Setup = &s
		}
		for _, ts := range specs {
			s, err := nativeSpec(ts)
			if err != nil {
				return nil, err
			}
			opts.Threads = append(opts.Threads, s)
		}
		run, err := codegen.Native(w.native, opts)
		if err != nil {
			return nil, err
		}
		res.flags = run.Flags
		res.state = run.State
	} else {
		res.flags = w.runThreads(specs)
	}
	res.elapsed = time.Since(start)
	w.executes.Add(1)
	return res, nil
}

// runThreads executes the specs concurrently on the live machine, one
// goroutine per spec with a globally fresh thread id, and collects every
// thread's error (soundness violations, deadlock aborts, runtime errors)
// as flags — the same recovery discipline as interp.Machine.Run, minus its
// request-local thread numbering.
func (w *World) runThreads(specs []interp.ThreadSpec) []string {
	var mu sync.Mutex
	var flags []string
	report := func(err error) {
		mu.Lock()
		flags = append(flags, err.Error())
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for _, spec := range specs {
		spec := spec
		tid := int(w.nextTID.Add(1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A deadlock abort unwinds as a panic (the Watcher's
			// *DeadlockError from AcquireAll, locks already released);
			// report it as this thread's flag instead of crashing the
			// daemon.
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok {
						err = fmt.Errorf("thread %d panic: %v", tid, r)
					}
					report(err)
				}
			}()
			if _, err := w.m.Call(tid, spec.Fn, spec.Args); err != nil {
				report(err)
			}
		}()
	}
	wg.Wait()
	return flags
}

// fingerprint quiesces the world (waits out every in-flight and detached
// execution) and returns the canonical state dump.
func (w *World) fingerprint() (string, error) {
	if w.Engine == EngineNative {
		return "", fmt.Errorf("native worlds hold no long-lived state; each execute returns its own fingerprint")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.m.StateDump(), nil
}

// profile snapshots the world's runtime lock profile (nil for native
// worlds, whose executions happen out of process). Safe on a live world —
// a scrape observes a consistent prefix of the counters.
func (w *World) profile() *locks.Profile {
	if w.m == nil {
		return nil
	}
	return w.m.Profile(w.Program.ID, w.Engine)
}

// refinePlan closes the runtime→inference feedback loop on a live world:
// it quiesces the machine (write lock — every in-flight execution drains
// first), feeds the accumulated runtime profile through the profile-guided
// refinement pass, and swaps the refined plan in, so subsequent executions
// acquire under it. The decision log is returned to the client verbatim.
// Native worlds are rejected: their plan is baked into the compiled binary.
func (w *World) refinePlan() ([]string, error) {
	if w.Engine == EngineNative {
		return nil, fmt.Errorf("native worlds cannot refine: the plan is compiled into the binary; create a new world from a refined plan instead")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	prof := w.m.Profile(w.Program.ID, w.Engine)
	p := w.Program
	res := refine.Refine(p.C.Program, p.C.Points, p.C.Andersen(), w.m.SectionLocks, prof, refine.Options{})
	w.m.SetSectionLocks(res.Plan)
	w.refines.Add(1)
	return res.Lines(), nil
}

// watcherFlags drains the deadlock monitor's accumulated findings.
func (w *World) watcherFlags() []string {
	if w.watch == nil {
		return nil
	}
	var out []string
	for _, v := range w.watch.OrderViolations() {
		out = append(out, v.String())
	}
	for _, c := range w.watch.LockOrderCycles() {
		out = append(out, c.String())
	}
	for _, d := range w.watch.Deadlocks() {
		d := d
		out = append(out, d.Error())
	}
	return out
}

// nativeSpec converts a thread spec for the process boundary (integer args
// only).
func nativeSpec(ts interp.ThreadSpec) (codegen.Spec, error) {
	s := codegen.Spec{Fn: ts.Fn}
	for _, a := range ts.Args {
		if a.Kind != interp.VInt {
			return s, fmt.Errorf("non-integer arg %s for %s cannot cross the process boundary", a, ts.Fn)
		}
		s.Args = append(s.Args, a.Int)
	}
	return s, nil
}

// Mutant kinds accepted by ExecuteRequest.Mutate.
const (
	MutateDropLocks   = "drop-locks"
	MutatePermutePlan = "permute-plan"
)

// runMutant executes the request's threads with an injected fault on an
// ephemeral machine — fresh state, the full mgl oracle stack (§4.2
// checker, happens-before race detector, Watcher) — so the conformance
// guarantee can be probed across the network boundary without corrupting
// the live world. The returned flags must be non-empty for an effective
// mutant: an unflagged mutant is an oracle gap.
func (w *World) runMutant(kind string, specs []interp.ThreadSpec) (*execResult, error) {
	p := w.Program
	tg := &oracle.Target{
		Name:    p.ID + "/" + kind,
		Prog:    p.C.Program,
		Pts:     p.C.Points,
		Plan:    p.Plan,
		Setup:   w.setup,
		Threads: specs,
	}
	switch kind {
	case MutateDropLocks:
		tg.Plan = transform.DropLock(p.Plan, "")
	case MutatePermutePlan:
		tg.PlanMutator = func(_ int64, steps []mgl.PlanStep) []mgl.PlanStep {
			out := make([]mgl.PlanStep, len(steps))
			for i, st := range steps {
				out[len(steps)-1-i] = st
			}
			return out
		}
	default:
		return nil, fmt.Errorf("unknown mutation %q (have %s, %s)", kind, MutateDropLocks, MutatePermutePlan)
	}
	start := time.Now()
	rep, err := tg.RunOnce(true)
	if err != nil {
		return nil, err
	}
	res := &execResult{elapsed: time.Since(start)}
	for _, r := range rep.Races {
		res.flags = append(res.flags, r.String())
	}
	for _, v := range rep.OrderViolations {
		res.flags = append(res.flags, v.String())
	}
	for _, c := range rep.LockOrderCycles {
		res.flags = append(res.flags, c.String())
	}
	for _, d := range rep.Deadlocks {
		d := d
		res.flags = append(res.flags, d.Error())
	}
	if rep.RunErr != nil {
		res.flags = append(res.flags, rep.RunErr.Error())
	}
	return res, nil
}
