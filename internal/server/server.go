// Package server implements lockinferd: a long-running compile-and-execute
// service over the lock-inference pipeline. Clients submit mini-C programs
// (POST /v1/programs — compiled once per distinct source through the shared
// pipeline artifact cache, concurrent identical submissions collapsed onto
// one compile), instantiate long-lived worlds under a selectable execution
// engine (POST /v1/worlds — mgl, stm, hybrid or native), and execute atomic
// sections against a world's shared state from many concurrent clients
// (POST /v1/execute). Observability is JSON counters plus per-world runtime
// lock profiles (GET /metrics) and a liveness probe (GET /healthz);
// per-world fingerprints for conformance checking come from GET /v1/state.
// An execute request may set refine: true to close the runtime→inference
// feedback loop in place: the world quiesces, its accumulated lock profile
// feeds the profile-guided refinement pass, and the refined plan replaces
// the live one before the request's threads run.
//
// The request path is production-shaped: a bounded admission queue with
// load-shedding 503s beyond capacity, per-request execution timeouts that
// detach (never abandon mid-flight) the running work, and a graceful drain
// for shutdown. Fault injection rides the same path — an execute request
// may ask for a dropped-locks or permuted-plan mutant, which runs on an
// ephemeral machine under the full oracle stack so tests can assert the
// conformance guarantee survives the network boundary.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lockinfer/internal/interp"
	"lockinfer/internal/pipeline"
)

// Config tunes one daemon instance. The zero value is serviceable: shared
// pipeline cache, 32 concurrent executions, a 128-deep admission queue and
// a 30s execution timeout.
type Config struct {
	// MaxInFlight bounds concurrently executing requests; QueueDepth bounds
	// how many more may wait for a slot before the server sheds load.
	MaxInFlight int
	QueueDepth  int
	// RequestTimeout bounds one execution; a request's timeout_ms may
	// shorten it but never extend it.
	RequestTimeout time.Duration
	// MaxThreads bounds the thread specs of one execute request.
	MaxThreads int
	// MaxSourceBytes bounds a submitted program's source text.
	MaxSourceBytes int64
	// Cache is the pipeline artifact cache shared across tenants (nil =
	// the process-wide pipeline.SharedCache).
	Cache *pipeline.Cache
	// Log, when set, receives request-path notes.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.Cache == nil {
		c.Cache = pipeline.SharedCache()
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Server is the daemon: registry, admission controller and HTTP handlers.
type Server struct {
	cfg      Config
	cache    *pipeline.Cache
	registry *registry
	metrics  Metrics
	mux      *http.ServeMux
	start    time.Time

	// slots is the execution-concurrency semaphore; drainCh closes when a
	// drain begins, kicking queued waiters out with a 503.
	slots    chan struct{}
	drainCh  chan struct{}
	draining bool
	drainMu  sync.Mutex
}

// New builds a server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    cfg.Cache,
		registry: newRegistry(),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		slots:    make(chan struct{}, cfg.MaxInFlight),
		drainCh:  make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/programs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/worlds", s.handleWorld)
	s.mux.HandleFunc("POST /v1/execute", s.handleExecute)
	s.mux.HandleFunc("GET /v1/state", s.handleState)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the live counters (tests and embedders).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Drain stops admitting execute requests, kicks queued waiters, and waits
// until every in-flight execution — detached ones included — completes, or
// ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.drainMu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.metrics.InFlight.Load() == 0 && s.metrics.Queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain expired with %d in flight", s.metrics.InFlight.Load())
		case <-tick.C:
		}
	}
}

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// --- handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Tenant == "" || req.Source == "" {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request", Message: "tenant and source are required"})
		return
	}
	if int64(len(req.Source)) > s.cfg.MaxSourceBytes {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
			Message: fmt.Sprintf("source exceeds %d bytes", s.cfg.MaxSourceBytes)})
		return
	}
	p, deduped, err := s.registry.resolve(s, req)
	if err != nil {
		var pe *pipeline.PipelineError
		if errors.As(err, &pe) {
			s.fail(w, http.StatusUnprocessableEntity, ErrorDetail{
				Kind: "pipeline", Pass: pe.Pass, Name: pe.Name, Message: pe.Error(),
			})
			return
		}
		s.fail(w, http.StatusUnprocessableEntity, ErrorDetail{Kind: "internal", Message: err.Error()})
		return
	}
	if deduped {
		s.metrics.CompileDedups.Add(1)
	}
	s.ok(w, SubmitResponse{
		ID:       p.ID,
		Sections: len(p.C.Program.Sections),
		Locks:    p.Locks(),
		Deduped:  deduped,
	})
}

func (s *Server) handleWorld(w http.ResponseWriter, r *http.Request) {
	var req WorldRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Tenant == "" || req.Program == "" {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request", Message: "tenant and program are required"})
		return
	}
	engine := req.Engine
	if engine == "" {
		engine = EngineMGL
	}
	if !validEngine(engine) {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
			Message: fmt.Sprintf("unknown engine %q (have mgl, stm, hybrid, native)", engine)})
		return
	}
	p := s.registry.program(req.Program)
	if p == nil {
		s.fail(w, http.StatusNotFound, ErrorDetail{Kind: "not-found",
			Message: fmt.Sprintf("no program %q", req.Program)})
		return
	}
	var setup *interp.ThreadSpec
	if req.Setup != nil {
		ts, det := s.spec(p, *req.Setup)
		if det != nil {
			s.fail(w, http.StatusBadRequest, *det)
			return
		}
		setup = &ts
	}
	world, err := newWorld(req.Tenant, p, engine, setup)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, ErrorDetail{Kind: "execution", Message: err.Error()})
		return
	}
	id := s.registry.addWorld(world)
	s.metrics.Worlds.Add(1)
	s.ok(w, WorldResponse{ID: id, Program: p.ID, Engine: engine})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if !s.decode(w, r, &req) {
		return
	}
	world := s.registry.world(req.World)
	if world == nil {
		s.fail(w, http.StatusNotFound, ErrorDetail{Kind: "not-found",
			Message: fmt.Sprintf("no world %q", req.World)})
		return
	}
	if req.Tenant != world.Tenant {
		s.fail(w, http.StatusForbidden, ErrorDetail{Kind: "forbidden",
			Message: fmt.Sprintf("world %s belongs to another tenant", world.ID)})
		return
	}
	if len(req.Threads) == 0 {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request", Message: "threads are required"})
		return
	}
	if len(req.Threads) > s.cfg.MaxThreads {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
			Message: fmt.Sprintf("request exceeds %d threads", s.cfg.MaxThreads)})
		return
	}
	if req.Mutate != "" && req.Mutate != MutateDropLocks && req.Mutate != MutatePermutePlan {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
			Message: fmt.Sprintf("unknown mutation %q (have %s, %s)", req.Mutate, MutateDropLocks, MutatePermutePlan)})
		return
	}
	if req.Refine {
		if req.Mutate != "" {
			s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
				Message: "refine cannot combine with a mutant run (mutants execute ephemerally; refine rewrites the live world)"})
			return
		}
		if world.Engine == EngineNative {
			s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
				Message: "native worlds cannot refine: the plan is compiled into the binary"})
			return
		}
	}
	specs := make([]interp.ThreadSpec, 0, len(req.Threads))
	for _, sj := range req.Threads {
		ts, det := s.spec(world.Program, sj)
		if det != nil {
			s.fail(w, http.StatusBadRequest, *det)
			return
		}
		specs = append(specs, ts)
	}

	// Admission: shed load beyond the bounded queue, kick waiters on drain,
	// respect the request deadline even while queued.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	if s.Draining() {
		s.metrics.Rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, ErrorDetail{Kind: "draining", Message: "server is draining"})
		return
	}
	if queued := s.metrics.Queued.Add(1); queued > int64(s.cfg.QueueDepth) {
		s.metrics.Queued.Add(-1)
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, ErrorDetail{Kind: "overloaded",
			Message: fmt.Sprintf("admission queue full (%d waiting)", queued-1)})
		return
	}
	select {
	case s.slots <- struct{}{}:
		s.metrics.Queued.Add(-1)
		s.metrics.InFlight.Add(1)
	case <-s.drainCh:
		s.metrics.Queued.Add(-1)
		s.metrics.Rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, ErrorDetail{Kind: "draining", Message: "server is draining"})
		return
	case <-deadline.C:
		s.metrics.Queued.Add(-1)
		s.metrics.Timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, ErrorDetail{Kind: "timeout", Message: "timed out waiting for an execution slot"})
		return
	case <-r.Context().Done():
		s.metrics.Queued.Add(-1)
		s.fail(w, http.StatusServiceUnavailable, ErrorDetail{Kind: "bad-request", Message: "client went away"})
		return
	}

	// The worker owns the slot for the execution's whole life: a request
	// that times out detaches (the response returns 504) but the work keeps
	// counting against MaxInFlight until it finishes, so timeouts cannot
	// blow the concurrency bound.
	type outcome struct {
		res     *execResult
		refined []string
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			s.metrics.InFlight.Add(-1)
			<-s.slots
		}()
		var out outcome
		if req.Mutate != "" {
			out.res, out.err = world.runMutant(req.Mutate, specs)
			s.metrics.MutantRuns.Add(1)
			if out.err == nil && len(out.res.flags) > 0 {
				s.metrics.MutantFlagged.Add(1)
			}
		} else {
			if req.Refine {
				// The refine quiesces the world before this request's
				// threads run, so the request observes its own rewrite.
				out.refined, out.err = world.refinePlan()
				s.metrics.Refines.Add(1)
			}
			if out.err == nil {
				out.res, out.err = world.execute(specs)
				s.metrics.Executes.Add(1)
				if out.err != nil || len(out.res.flags) > 0 {
					s.metrics.ExecuteErrors.Add(1)
				}
			}
		}
		done <- out
	}()
	select {
	case out := <-done:
		if out.err != nil {
			s.fail(w, http.StatusUnprocessableEntity, ErrorDetail{Kind: "execution", Message: out.err.Error()})
			return
		}
		s.ok(w, ExecuteResponse{
			World:     world.ID,
			Engine:    world.Engine,
			ElapsedNS: out.res.elapsed.Nanoseconds(),
			Flags:     out.res.flags,
			State:     out.res.state,
			Mutate:    req.Mutate,
			Refined:   out.refined,
		})
	case <-deadline.C:
		s.metrics.Timeouts.Add(1)
		s.metrics.Detached.Add(1)
		world.detached.Add(1)
		s.cfg.Log("execute on %s detached after %s", world.ID, timeout)
		s.fail(w, http.StatusGatewayTimeout, ErrorDetail{Kind: "timeout",
			Message: fmt.Sprintf("execution exceeded %s; it continues detached", timeout)})
	}
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	world := s.registry.world(r.URL.Query().Get("world"))
	if world == nil {
		s.fail(w, http.StatusNotFound, ErrorDetail{Kind: "not-found",
			Message: fmt.Sprintf("no world %q", r.URL.Query().Get("world"))})
		return
	}
	fp, err := world.fingerprint()
	if err != nil {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request", Message: err.Error()})
		return
	}
	s.ok(w, StateResponse{
		World:        world.ID,
		Fingerprint:  fp,
		Executes:     world.executes.Load(),
		Detached:     world.detached.Load(),
		WatcherFlags: world.watcherFlags(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.ok(w, s.snapshotMetrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	programs, worlds := s.registry.counts()
	s.ok(w, HealthResponse{
		OK:       true,
		UptimeMS: time.Since(s.start).Milliseconds(),
		InFlight: s.metrics.InFlight.Load(),
		Programs: programs,
		Worlds:   worlds,
		Draining: s.Draining(),
	})
}

// --- helpers ---

func validEngine(e string) bool {
	for _, have := range Engines() {
		if e == have {
			return true
		}
	}
	return false
}

// spec validates a wire spec against the program and converts it.
func (s *Server) spec(p *Program, sj SpecJSON) (interp.ThreadSpec, *ErrorDetail) {
	if sj.Fn == "" {
		return interp.ThreadSpec{}, &ErrorDetail{Kind: "bad-request", Message: "thread fn is required"}
	}
	if p.C.Program.Func(sj.Fn) == nil {
		return interp.ThreadSpec{}, &ErrorDetail{Kind: "bad-request",
			Message: fmt.Sprintf("program %s has no function %q", p.ID, sj.Fn)}
	}
	ts := interp.ThreadSpec{Fn: sj.Fn}
	for _, a := range sj.Args {
		ts.Args = append(ts.Args, interp.IntV(a))
	}
	return ts, nil
}

// decode unmarshals a JSON body, answering 400 on malformed input.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+4096))
	if err != nil {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request", Message: "unreadable body"})
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		s.fail(w, http.StatusBadRequest, ErrorDetail{Kind: "bad-request",
			Message: fmt.Sprintf("malformed JSON: %v", err)})
		return false
	}
	return true
}

func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, det ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: det})
	if code >= 500 || code == http.StatusUnprocessableEntity {
		s.cfg.Log("request failed (%d %s): %s", code, det.Kind, det.Message)
	}
}
