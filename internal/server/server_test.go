// Request-lifecycle tests for lockinferd, driven through the HTTP surface
// exactly like a client: structured errors for malformed and unprocessable
// requests, the happy path across every engine, per-request timeouts that
// detach work without losing it, admission-queue load shedding, and the
// graceful-shutdown drain.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lockinfer/internal/pipeline"
	"lockinfer/internal/progs"
	"lockinfer/internal/server"
)

// daemon is an in-process lockinferd plus client plumbing.
type daemon struct {
	t   *testing.T
	srv *server.Server
	ts  *httptest.Server
}

func newDaemon(t *testing.T, cfg server.Config) *daemon {
	t.Helper()
	if cfg.Cache == nil {
		// A private cache per daemon keeps hit/miss assertions independent
		// of whatever else the test binary compiled.
		cfg.Cache = pipeline.NewCache(0)
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &daemon{t: t, srv: srv, ts: ts}
}

// do issues one request and returns the status code and raw body.
func (d *daemon) do(method, path string, body []byte) (int, []byte) {
	d.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, d.ts.URL+path, rd)
	if err != nil {
		d.t.Fatalf("build %s %s: %v", method, path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		d.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp.StatusCode, data
}

// call issues a request with a JSON body and decodes a 2xx response into
// out; non-2xx responses fail the test with the server's error detail.
func (d *daemon) call(method, path string, body, out any) {
	d.t.Helper()
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			d.t.Fatalf("marshal %T: %v", body, err)
		}
	}
	code, raw := d.do(method, path, data)
	if code >= 300 {
		d.t.Fatalf("%s %s: %d: %s", method, path, code, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			d.t.Fatalf("%s %s: decode %T: %v", method, path, out, err)
		}
	}
}

// wantError issues a request and asserts the status code and error kind.
func (d *daemon) wantError(method, path string, body []byte, code int, kind string) server.ErrorDetail {
	d.t.Helper()
	got, raw := d.do(method, path, body)
	if got != code {
		d.t.Fatalf("%s %s: code %d, want %d (%s)", method, path, got, code, raw)
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		d.t.Fatalf("%s %s: error body is not the envelope: %v (%s)", method, path, err, raw)
	}
	if eb.Error.Kind != kind {
		d.t.Fatalf("%s %s: error kind %q, want %q (message %q)", method, path, eb.Error.Kind, kind, eb.Error.Message)
	}
	return eb.Error
}

func (d *daemon) submit(tenant, name, source string) server.SubmitResponse {
	d.t.Helper()
	var resp server.SubmitResponse
	d.call("POST", "/v1/programs", server.SubmitRequest{Tenant: tenant, Name: name, Source: source}, &resp)
	return resp
}

func (d *daemon) world(tenant, program, engine string, setup *server.SpecJSON) server.WorldResponse {
	d.t.Helper()
	var resp server.WorldResponse
	d.call("POST", "/v1/worlds", server.WorldRequest{Tenant: tenant, Program: program, Engine: engine, Setup: setup}, &resp)
	return resp
}

func (d *daemon) execute(req server.ExecuteRequest) server.ExecuteResponse {
	d.t.Helper()
	var resp server.ExecuteResponse
	d.call("POST", "/v1/execute", req, &resp)
	return resp
}

func (d *daemon) state(world string) server.StateResponse {
	d.t.Helper()
	var resp server.StateResponse
	d.call("GET", "/v1/state?world="+world, nil, &resp)
	return resp
}

func (d *daemon) metricsSnapshot() server.MetricsSnapshot {
	d.t.Helper()
	var snap server.MetricsSnapshot
	d.call("GET", "/metrics", nil, &snap)
	return snap
}

func source(t *testing.T, name string) string {
	t.Helper()
	p, err := progs.Get(name)
	if err != nil {
		t.Fatalf("corpus program %s: %v", name, err)
	}
	return p.Source()
}

func bumpThreads(n int64, threads int) []server.SpecJSON {
	out := make([]server.SpecJSON, threads)
	for i := range out {
		out[i] = server.SpecJSON{Fn: "bump", Args: []int64{n}}
	}
	return out
}

// TestRequestLifecycleErrors walks the malformed and unprocessable corners
// of every endpoint: each answers the documented status code with the
// structured error envelope, and compile failures carry the pipeline's own
// pass attribution.
func TestRequestLifecycleErrors(t *testing.T) {
	d := newDaemon(t, server.Config{})
	counter := d.submit("acme", "counter", source(t, "counter"))
	w := d.world("acme", counter.ID, server.EngineMGL, nil)

	exec := func(req server.ExecuteRequest) []byte {
		b, _ := json.Marshal(req)
		return b
	}
	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		code   int
		kind   string
	}{
		{"malformed JSON", "POST", "/v1/programs", []byte(`{"tenant":`), http.StatusBadRequest, "bad-request"},
		{"submit missing source", "POST", "/v1/programs", []byte(`{"tenant":"t"}`), http.StatusBadRequest, "bad-request"},
		{"submit missing tenant", "POST", "/v1/programs", []byte(`{"source":"int x;"}`), http.StatusBadRequest, "bad-request"},
		{"compile error", "POST", "/v1/programs",
			[]byte(`{"tenant":"t","source":"void broken( {"}`), http.StatusUnprocessableEntity, "pipeline"},
		{"world malformed JSON", "POST", "/v1/worlds", []byte(`[`), http.StatusBadRequest, "bad-request"},
		{"world unknown engine", "POST", "/v1/worlds",
			[]byte(`{"tenant":"t","program":"` + counter.ID + `","engine":"tm"}`), http.StatusBadRequest, "bad-request"},
		{"world unknown program", "POST", "/v1/worlds",
			[]byte(`{"tenant":"t","program":"p-nope-k3"}`), http.StatusNotFound, "not-found"},
		{"world unknown setup fn", "POST", "/v1/worlds",
			[]byte(`{"tenant":"t","program":"` + counter.ID + `","setup":{"fn":"nope"}}`), http.StatusBadRequest, "bad-request"},
		{"execute malformed JSON", "POST", "/v1/execute", []byte(`{`), http.StatusBadRequest, "bad-request"},
		{"execute unknown world", "POST", "/v1/execute",
			exec(server.ExecuteRequest{Tenant: "acme", World: "w-999", Threads: bumpThreads(1, 1)}),
			http.StatusNotFound, "not-found"},
		{"execute tenant mismatch", "POST", "/v1/execute",
			exec(server.ExecuteRequest{Tenant: "evil", World: w.ID, Threads: bumpThreads(1, 1)}),
			http.StatusForbidden, "forbidden"},
		{"execute no threads", "POST", "/v1/execute",
			exec(server.ExecuteRequest{Tenant: "acme", World: w.ID}), http.StatusBadRequest, "bad-request"},
		{"execute unknown fn", "POST", "/v1/execute",
			exec(server.ExecuteRequest{Tenant: "acme", World: w.ID, Threads: []server.SpecJSON{{Fn: "nope"}}}),
			http.StatusBadRequest, "bad-request"},
		{"execute unknown mutation", "POST", "/v1/execute",
			exec(server.ExecuteRequest{Tenant: "acme", World: w.ID, Threads: bumpThreads(1, 1), Mutate: "scramble"}),
			http.StatusBadRequest, "bad-request"},
		{"state unknown world", "GET", "/v1/state?world=w-999", nil, http.StatusNotFound, "not-found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			det := d.wantError(tc.method, tc.path, tc.body, tc.code, tc.kind)
			if tc.kind == "pipeline" && det.Pass == "" {
				t.Fatalf("pipeline error lost its pass attribution: %+v", det)
			}
		})
	}

	t.Run("thread cap", func(t *testing.T) {
		capped := newDaemon(t, server.Config{MaxThreads: 2})
		p := capped.submit("t", "counter", source(t, "counter"))
		cw := capped.world("t", p.ID, server.EngineMGL, nil)
		body, _ := json.Marshal(server.ExecuteRequest{Tenant: "t", World: cw.ID, Threads: bumpThreads(1, 3)})
		capped.wantError("POST", "/v1/execute", body, http.StatusBadRequest, "bad-request")
	})
	t.Run("source cap", func(t *testing.T) {
		capped := newDaemon(t, server.Config{MaxSourceBytes: 16})
		body, _ := json.Marshal(server.SubmitRequest{Tenant: "t", Source: strings.Repeat("int x;\n", 10)})
		capped.wantError("POST", "/v1/programs", body, http.StatusBadRequest, "bad-request")
	})
}

// TestHappyPathAcrossEngines drives the full lifecycle — submit, world,
// execute, state — under every engine and cross-checks the counters.
func TestHappyPathAcrossEngines(t *testing.T) {
	d := newDaemon(t, server.Config{})
	counter := d.submit("acme", "counter", source(t, "counter"))
	if counter.Sections == 0 || counter.Locks == 0 {
		t.Fatalf("counter compiled to no sections/locks: %+v", counter)
	}
	if counter.Deduped {
		t.Fatalf("first submission reported deduped")
	}

	for _, engine := range server.Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			w := d.world("acme", counter.ID, engine, nil)
			if w.Engine != engine || w.Program != counter.ID {
				t.Fatalf("world response %+v", w)
			}
			resp := d.execute(server.ExecuteRequest{
				Tenant: "acme", World: w.ID, Threads: bumpThreads(10, 2),
			})
			if len(resp.Flags) != 0 {
				t.Fatalf("clean run flagged: %v", resp.Flags)
			}
			if engine == server.EngineNative {
				// Native worlds are per-request: the fingerprint comes back
				// with the response and /v1/state refuses.
				if !strings.Contains(resp.State, "counter=20") {
					t.Fatalf("native run state: %q", resp.State)
				}
				d.wantError("GET", "/v1/state?world="+w.ID, nil, http.StatusBadRequest, "bad-request")
				return
			}
			st := d.state(w.ID)
			if !strings.Contains(st.Fingerprint, "counter=20") {
				t.Fatalf("%s world fingerprint after 2x bump(10): %q", engine, st.Fingerprint)
			}
			if st.Executes != 1 || st.Detached != 0 {
				t.Fatalf("world accounting: %+v", st)
			}
			if len(st.WatcherFlags) != 0 {
				t.Fatalf("watcher flags on a clean world: %v", st.WatcherFlags)
			}
			// State accumulates across requests: a second execute moves the
			// same world, not a fresh copy.
			d.execute(server.ExecuteRequest{Tenant: "acme", World: w.ID, Threads: bumpThreads(5, 1)})
			if st = d.state(w.ID); !strings.Contains(st.Fingerprint, "counter=25") {
				t.Fatalf("%s world fingerprint after +5: %q", engine, st.Fingerprint)
			}
		})
	}

	var health server.HealthResponse
	d.call("GET", "/healthz", nil, &health)
	if !health.OK || health.Programs != 1 || health.Worlds != int64(len(server.Engines())) {
		t.Fatalf("health: %+v", health)
	}
	snap := d.metricsSnapshot()
	if snap.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1", snap.Compiles)
	}
	if snap.Executes == 0 || snap.ExecuteErrors != 0 || snap.InFlight != 0 {
		t.Fatalf("metrics: %+v", snap)
	}
}

// TestRequestTimeoutDetaches proves the timeout path: a request whose
// execution overruns its budget answers 504 while the work continues
// detached — and the fingerprint endpoint still quiesces against it.
func TestRequestTimeoutDetaches(t *testing.T) {
	d := newDaemon(t, server.Config{})
	counter := d.submit("acme", "counter", source(t, "counter"))
	w := d.world("acme", counter.ID, server.EngineMGL, nil)

	body, _ := json.Marshal(server.ExecuteRequest{
		Tenant: "acme", World: w.ID,
		Threads:   bumpThreads(400_000, 1),
		TimeoutMS: 1,
	})
	d.wantError("POST", "/v1/execute", body, http.StatusGatewayTimeout, "timeout")

	snap := d.metricsSnapshot()
	if snap.Timeouts != 1 || snap.Detached != 1 {
		t.Fatalf("timeout accounting: %+v", snap)
	}
	// The fingerprint write-lock waits out the detached run, so the dump is
	// the run's completed effect, not a torn intermediate.
	st := d.state(w.ID)
	if !strings.Contains(st.Fingerprint, "counter=400000") {
		t.Fatalf("fingerprint after detached run: %q", st.Fingerprint)
	}
	if st.Detached != 1 {
		t.Fatalf("world detached count: %+v", st)
	}
	if snap = d.metricsSnapshot(); snap.InFlight != 0 {
		t.Fatalf("in-flight after quiescence: %+v", snap)
	}
}

// TestAdmissionQueueShedsLoad fills the one execution slot and the
// one-deep queue, then asserts the next request is shed with 503 and a
// Retry-After hint instead of queuing without bound.
func TestAdmissionQueueShedsLoad(t *testing.T) {
	// A generous per-request budget keeps the slow slot-holders from
	// tripping the timeout path on a contended CI box — this test is
	// about the queue, not the deadline.
	d := newDaemon(t, server.Config{
		MaxInFlight: 1, QueueDepth: 1, RequestTimeout: 5 * time.Minute,
	})
	counter := d.submit("acme", "counter", source(t, "counter"))
	w := d.world("acme", counter.ID, server.EngineMGL, nil)

	slow, _ := json.Marshal(server.ExecuteRequest{
		Tenant: "acme", World: w.ID, Threads: bumpThreads(600_000, 1),
	})
	fast, _ := json.Marshal(server.ExecuteRequest{
		Tenant: "acme", World: w.ID, Threads: bumpThreads(1, 1),
	})

	// Occupy the slot, then the queue.
	release := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, raw := d.do("POST", "/v1/execute", slow)
			if code != http.StatusOK {
				t.Errorf("queued execute: %d: %s", code, raw)
			}
			release <- struct{}{}
		}()
	}
	waitFor(t, func() bool {
		snap := d.metricsSnapshot()
		return snap.InFlight == 1 && snap.Queued == 1
	}, "one in flight, one queued")

	got, raw := d.do("POST", "/v1/execute", fast)
	if got != http.StatusServiceUnavailable {
		t.Fatalf("over-queue execute: %d: %s", got, raw)
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Kind != "overloaded" {
		t.Fatalf("over-queue error: %v %s", err, raw)
	}

	<-release
	<-release
	if snap := d.metricsSnapshot(); snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}
}

// TestDrainCompletesInFlight proves graceful shutdown: a drain lets the
// running execution finish (its client gets a real 200), sheds new work
// with 503s, and Drain only returns once the server is quiet.
func TestDrainCompletesInFlight(t *testing.T) {
	d := newDaemon(t, server.Config{RequestTimeout: 5 * time.Minute})
	counter := d.submit("acme", "counter", source(t, "counter"))
	w := d.world("acme", counter.ID, server.EngineMGL, nil)

	slow, _ := json.Marshal(server.ExecuteRequest{
		Tenant: "acme", World: w.ID, Threads: bumpThreads(600_000, 1),
	})
	slowDone := make(chan int, 1)
	go func() {
		code, _ := d.do("POST", "/v1/execute", slow)
		slowDone <- code
	}()
	waitFor(t, func() bool { return d.metricsSnapshot().InFlight == 1 }, "execution in flight")

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- d.srv.Drain(ctx) }()
	waitFor(t, func() bool { return d.srv.Draining() }, "drain begun")

	fast, _ := json.Marshal(server.ExecuteRequest{
		Tenant: "acme", World: w.ID, Threads: bumpThreads(1, 1),
	})
	d.wantError("POST", "/v1/execute", fast, http.StatusServiceUnavailable, "draining")

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight execution during drain answered %d", code)
	}
	var health server.HealthResponse
	d.call("GET", "/healthz", nil, &health)
	if !health.Draining || health.InFlight != 0 {
		t.Fatalf("post-drain health: %+v", health)
	}
}

// waitFor polls cond for a few seconds; the interesting states here are
// transient windows opened by background goroutines.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
