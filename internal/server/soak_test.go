// The PR's headline artifact: a soak of lockinferd under sustained
// mixed-tenant open-loop traffic with the full observation stack attached —
// the Go race detector over the whole daemon (via `make soak` / the -race
// CI lane), the mgl deadlock Watcher on every in-process mgl/hybrid world,
// and an end-of-run conformance check that serially replays each counter
// world's completed operations on a fresh machine and demands fingerprint
// equality. Short mode (`go test -short`, part of `make check`) runs a
// seconds-long slice of the same soak; `make soak` sets LOCKINFER_SOAK=60s
// for the full acceptance run.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"

	"lockinfer/internal/interp"
	"lockinfer/internal/loadgen"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/server"
)

// soakDuration picks the arrival-phase length: the LOCKINFER_SOAK
// environment variable wins, then -short selects the CI slice.
func soakDuration(t *testing.T) time.Duration {
	if v := os.Getenv("LOCKINFER_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("LOCKINFER_SOAK=%q: %v", v, err)
		}
		return d
	}
	if testing.Short() {
		return 2 * time.Second
	}
	return 5 * time.Second
}

func TestSoak(t *testing.T) {
	dur := soakDuration(t)
	rps := 80.0
	if testing.Short() {
		rps = 50.0
	}
	d := newDaemon(t, server.Config{
		// Generous execution budget: the soak's conformance accounting
		// requires zero timeouts (a detached run mutates state its request
		// never reported completing).
		RequestTimeout: 2 * time.Minute,
		MaxInFlight:    16,
		QueueDepth:     1024,
		Cache:          pipeline.NewCache(0),
	})

	counterSrc := source(t, "counter")
	accountsSrc := source(t, "accounts")
	counter := d.submit("acme", "counter", counterSrc)
	accounts := d.submit("globex", "accounts", accountsSrc)
	// Seed a second configuration so pipeline-cache hits are deterministic,
	// not left to the weighted mix.
	d.call("POST", "/v1/programs", server.SubmitRequest{
		Tenant: "acme", Name: "counter-k2", Source: counterSrc, K: 2, KSet: true,
	}, nil)

	counterWorlds := map[string]server.WorldResponse{
		server.EngineMGL:    d.world("acme", counter.ID, server.EngineMGL, nil),
		server.EngineSTM:    d.world("acme", counter.ID, server.EngineSTM, nil),
		server.EngineHybrid: d.world("acme", counter.ID, server.EngineHybrid, nil),
	}
	accountsWorld := d.world("globex", accounts.ID, server.EngineMGL, &server.SpecJSON{Fn: "init"})

	// One execute op per world. Counter requests are two concurrent bump(8)
	// threads — commutative increments, so any serialization of any
	// interleaving lands on the same final state, which is what makes the
	// serial replay below a sound oracle. Accounts requests are two
	// concurrent worker(4) threads (net-zero transfer pairs). The state
	// scrape quiesces the busiest world mid-soak, exercising the
	// read-write ordering under load; resubmissions keep the singleflight
	// and dedup paths hot.
	bump := bumpThreads(8, 2)
	execBody := func(tenant, world string, threads []server.SpecJSON) []byte {
		b, err := json.Marshal(server.ExecuteRequest{Tenant: tenant, World: world, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	resubmit, _ := json.Marshal(server.SubmitRequest{Tenant: "soak-resub", Source: counterSrc})
	resubmitK2, _ := json.Marshal(server.SubmitRequest{Tenant: "soak-resub", Source: counterSrc, K: 2, KSet: true})
	mix := []loadgen.Op{
		{Name: "exec-counter-mgl", Weight: 25, Method: "POST", Path: "/v1/execute",
			Body: execBody("acme", counterWorlds[server.EngineMGL].ID, bump)},
		{Name: "exec-counter-stm", Weight: 20, Method: "POST", Path: "/v1/execute",
			Body: execBody("acme", counterWorlds[server.EngineSTM].ID, bump)},
		{Name: "exec-counter-hybrid", Weight: 20, Method: "POST", Path: "/v1/execute",
			Body: execBody("acme", counterWorlds[server.EngineHybrid].ID, bump)},
		{Name: "exec-accounts", Weight: 15, Method: "POST", Path: "/v1/execute",
			Body: execBody("globex", accountsWorld.ID, []server.SpecJSON{
				{Fn: "worker", Args: []int64{4}}, {Fn: "worker", Args: []int64{4}},
			})},
		{Name: "resubmit", Weight: 5, Method: "POST", Path: "/v1/programs", Body: resubmit},
		{Name: "resubmit-k2", Weight: 2, Method: "POST", Path: "/v1/programs", Body: resubmitK2},
		{Name: "metrics", Weight: 3, Method: "GET", Path: "/metrics"},
		{Name: "state-scrape", Weight: 2, Method: "GET",
			Path: "/v1/state?world=" + counterWorlds[server.EngineMGL].ID},
	}

	t.Logf("soaking %s at %.0f req/s", dur, rps)
	res, err := loadgen.Drive(context.Background(), d.ts.Client(), d.ts.URL, mix, loadgen.Config{
		TargetRPS:      rps,
		Duration:       dur,
		MaxOutstanding: 64,
		Timeout:        90 * time.Second,
		Seed:           11,
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	t.Logf("sent %d done %d dropped %d p50 %s p99 %s",
		res.Sent, res.Done, res.Dropped,
		time.Duration(res.P50NS), time.Duration(res.P99NS))

	// Outcome hygiene: every fired request completed (drops from the
	// outstanding bound are fine — they never reached the server — but
	// failures, timeouts and shed load under this gentle a mix are not).
	if res.Failed != 0 || res.Timeout != 0 || res.Rejected != 0 {
		t.Fatalf("soak outcomes: %d failed, %d timed out, %d rejected: %+v",
			res.Failed, res.Timeout, res.Rejected, res.PerOp)
	}
	for _, op := range mix {
		if st := res.PerOp[op.Name]; st.Sent > 0 && st.Done != st.Sent {
			t.Fatalf("op %s: %d sent, %d done", op.Name, st.Sent, st.Done)
		}
	}
	for _, name := range []string{"exec-counter-mgl", "exec-counter-stm", "exec-counter-hybrid", "exec-accounts"} {
		if res.PerOp[name].Done == 0 {
			t.Fatalf("op %s never completed; the soak did not exercise its world", name)
		}
	}

	snap := d.metricsSnapshot()
	if snap.ExecuteErrors != 0 {
		t.Fatalf("execute errors under soak: %+v", snap)
	}
	if snap.Timeouts != 0 || snap.Detached != 0 {
		t.Fatalf("timeouts/detached under soak: %+v", snap)
	}
	if snap.CacheHits == 0 {
		t.Fatalf("pipeline cache never hit: %+v", snap)
	}
	if snap.CompileDedups == 0 {
		t.Fatalf("resubmissions never deduped: %+v", snap)
	}

	// Conformance: serially replay each counter world's completed requests
	// on a fresh machine. bump is commutative, so the serial state is the
	// unique correct final state for any schedule of those requests; a
	// fingerprint mismatch means the engine lost or tore an update.
	replayOps := map[string]string{
		server.EngineMGL:    "exec-counter-mgl",
		server.EngineSTM:    "exec-counter-stm",
		server.EngineHybrid: "exec-counter-hybrid",
	}
	for engine, w := range counterWorlds {
		st := d.state(w.ID)
		if st.Detached != 0 {
			t.Fatalf("%s world has detached runs; fingerprint accounting is void", engine)
		}
		if len(st.WatcherFlags) != 0 {
			t.Fatalf("%s world watcher flags: %v", engine, st.WatcherFlags)
		}
		done := res.PerOp[replayOps[engine]].Done
		if st.Executes != done {
			t.Fatalf("%s world executed %d requests, loadgen completed %d", engine, st.Executes, done)
		}
		want := replayCounter(t, counterSrc, done)
		if st.Fingerprint != want {
			t.Fatalf("%s world non-conformant after %d requests:\n  live   %q\n  replay %q",
				engine, done, st.Fingerprint, want)
		}
	}
	// Accounts: each worker(4) pairs every transfer with its reverse, so
	// the serial replay (equivalently, the initial state) is the unique
	// conformant outcome.
	st := d.state(accountsWorld.ID)
	want := replayAccounts(t, accountsSrc, res.PerOp["exec-accounts"].Done)
	if st.Fingerprint != want {
		t.Fatalf("accounts world non-conformant:\n  live   %q\n  replay %q", st.Fingerprint, want)
	}

	// Graceful shutdown closes the soak: drain, verify in-flight work is
	// gone and new work is shed.
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := d.srv.Drain(dctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	d.wantError("POST", "/v1/execute",
		execBody("acme", counterWorlds[server.EngineMGL].ID, bump),
		http.StatusServiceUnavailable, "draining")
}

// replayCounter compiles the counter program exactly as the server did and
// serially applies done requests' worth of bumps (two bump(8) threads per
// request) on a fresh machine.
func replayCounter(t *testing.T, src string, done int64) string {
	t.Helper()
	m := replayMachine(t, src, "counter-replay")
	for i := int64(0); i < 2*done; i++ {
		if _, err := m.Call(1, "bump", []interp.Value{interp.IntV(8)}); err != nil {
			t.Fatalf("replay bump: %v", err)
		}
	}
	return m.StateDump()
}

// replayAccounts runs init then serially applies done requests' worth of
// workers (two worker(4) threads per request).
func replayAccounts(t *testing.T, src string, done int64) string {
	t.Helper()
	m := replayMachine(t, src, "accounts-replay")
	if _, err := m.Call(1, "init", nil); err != nil {
		t.Fatalf("replay init: %v", err)
	}
	for i := int64(0); i < 2*done; i++ {
		if _, err := m.Call(1, "worker", []interp.Value{interp.IntV(4)}); err != nil {
			t.Fatalf("replay worker: %v", err)
		}
	}
	return m.StateDump()
}

func replayMachine(t *testing.T, src, name string) *interp.Machine {
	t.Helper()
	c, err := pipeline.Compile(src, pipeline.Options{Name: name, Cache: pipeline.NewCache(0)})
	if err != nil {
		t.Fatalf("replay compile: %v", err)
	}
	m := interp.NewMachine(c.Program, c.Points, c.Plan())
	if err := m.Init(); err != nil {
		t.Fatalf("replay init: %v", err)
	}
	return m
}
