// Multi-tenant compile-path concurrency: parallel identical submissions
// collapse onto one compile (singleflight), the shared pipeline artifact
// cache is hit across configurations, and the hit-rate counters surface it
// all through /metrics.
package server_test

import (
	"sync"
	"testing"

	"lockinfer/internal/server"
)

// TestParallelSubmitsSingleflight fires N tenants at the same source
// concurrently and asserts exactly one pipeline compile ran, every
// submission resolved to the same content-addressed id, and all but one
// were accounted as dedups.
func TestParallelSubmitsSingleflight(t *testing.T) {
	d := newDaemon(t, server.Config{})
	src := source(t, "counter")
	const n = 12

	ids := make([]string, n)
	deduped := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp server.SubmitResponse
			d.call("POST", "/v1/programs", server.SubmitRequest{
				Tenant: "tenant-" + string(rune('a'+i)), Name: "counter", Source: src,
			}, &resp)
			ids[i] = resp.ID
			deduped[i] = resp.Deduped
		}()
	}
	wg.Wait()

	freshCompiles := 0
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d resolved to %s, want %s", i, ids[i], ids[0])
		}
	}
	for _, dd := range deduped {
		if !dd {
			freshCompiles++
		}
	}
	if freshCompiles != 1 {
		t.Fatalf("%d submissions claimed the fresh compile, want exactly 1", freshCompiles)
	}
	snap := d.metricsSnapshot()
	if snap.Compiles != 1 {
		t.Fatalf("compiles = %d after %d identical parallel submits, want 1", snap.Compiles, n)
	}
	if snap.CompileDedups != n-1 {
		t.Fatalf("compile dedups = %d, want %d", snap.CompileDedups, n-1)
	}
	if snap.Programs != 1 {
		t.Fatalf("programs = %d, want 1", snap.Programs)
	}
}

// TestDistinctSourcesCompileSeparately checks the dedup key: different
// sources, and the same source under a different k bound, are distinct
// programs — but the second k shares the k-independent pipeline artifacts
// (parse, points-to) through the cache, which the hit counters expose.
func TestDistinctSourcesCompileSeparately(t *testing.T) {
	d := newDaemon(t, server.Config{})
	counterSrc := source(t, "counter")
	accountsSrc := source(t, "accounts")

	a := d.submit("acme", "counter", counterSrc)
	b := d.submit("acme", "accounts", accountsSrc)
	if a.ID == b.ID {
		t.Fatalf("distinct sources share id %s", a.ID)
	}
	snap := d.metricsSnapshot()
	if snap.Compiles != 2 {
		t.Fatalf("compiles = %d after 2 distinct sources, want 2", snap.Compiles)
	}
	hitsBefore := snap.CacheHits

	// Same source, different k: a new program id, a real compile, but the
	// parse and points-to artifacts come from the shared cache.
	var k2 server.SubmitResponse
	d.call("POST", "/v1/programs", server.SubmitRequest{
		Tenant: "globex", Name: "counter-k2", Source: counterSrc, K: 2, KSet: true,
	}, &k2)
	if k2.ID == a.ID {
		t.Fatalf("k=2 submission shares id with the k-default program")
	}
	if k2.Deduped {
		t.Fatalf("k=2 submission reported deduped; it is a distinct configuration")
	}
	snap = d.metricsSnapshot()
	if snap.Compiles != 3 {
		t.Fatalf("compiles = %d, want 3", snap.Compiles)
	}
	if snap.CacheHits <= hitsBefore {
		t.Fatalf("cache hits did not grow across k configurations: %d -> %d",
			hitsBefore, snap.CacheHits)
	}
	if snap.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v, want > 0", snap.CacheHitRate)
	}

	// Re-submitting a registered program from yet another tenant is a pure
	// registry hit: no compile, deduped.
	again := d.submit("initech", "counter", counterSrc)
	if !again.Deduped || again.ID != a.ID {
		t.Fatalf("re-submission: %+v, want dedup onto %s", again, a.ID)
	}
	if snap = d.metricsSnapshot(); snap.Compiles != 3 {
		t.Fatalf("re-submission recompiled: compiles = %d", snap.Compiles)
	}
}

// TestParallelMixedSubmits interleaves identical and distinct submissions
// under contention: the compile count must equal the number of distinct
// (source, k) configurations, never more.
func TestParallelMixedSubmits(t *testing.T) {
	d := newDaemon(t, server.Config{})
	sources := []string{source(t, "counter"), source(t, "accounts"), source(t, "list")}
	const perSource = 6

	var wg sync.WaitGroup
	for _, src := range sources {
		for i := 0; i < perSource; i++ {
			src := src
			wg.Add(1)
			go func() {
				defer wg.Done()
				var resp server.SubmitResponse
				d.call("POST", "/v1/programs", server.SubmitRequest{
					Tenant: "mixed", Source: src,
				}, &resp)
			}()
		}
	}
	wg.Wait()

	snap := d.metricsSnapshot()
	if want := int64(len(sources)); snap.Compiles != want {
		t.Fatalf("compiles = %d over %d distinct sources x %d submitters, want %d",
			snap.Compiles, len(sources), perSource, want)
	}
	if want := int64(len(sources) * (perSource - 1)); snap.CompileDedups != want {
		t.Fatalf("dedups = %d, want %d", snap.CompileDedups, want)
	}
}
