// Fault injection across the network boundary: an execute request may ask
// for a dropped-locks or permuted-plan mutant, which runs on an ephemeral
// machine under the full oracle stack. The oracle must flag both faults
// end-to-end — and the live world the request was addressed to must come
// through untouched.
package server_test

import (
	"testing"

	"lockinfer/internal/server"
)

// TestDropLocksMutantFlagged strips every inferred lock from the counter's
// sections for one request: the §4.2 checker trips on the first unprotected
// shared access, and the response carries the flags.
func TestDropLocksMutantFlagged(t *testing.T) {
	d := newDaemon(t, server.Config{})
	counter := d.submit("acme", "counter", source(t, "counter"))
	w := d.world("acme", counter.ID, server.EngineMGL, nil)
	before := d.state(w.ID).Fingerprint

	resp := d.execute(server.ExecuteRequest{
		Tenant: "acme", World: w.ID,
		Threads: bumpThreads(50, 2),
		Mutate:  server.MutateDropLocks,
	})
	if len(resp.Flags) == 0 {
		t.Fatalf("drop-locks mutant ran unflagged: the oracle has a gap")
	}
	if resp.Mutate != server.MutateDropLocks {
		t.Fatalf("response did not echo the mutation: %+v", resp)
	}

	// The mutant executed on an ephemeral machine: the live world's state
	// and its Watcher are unchanged.
	st := d.state(w.ID)
	if st.Fingerprint != before {
		t.Fatalf("mutant corrupted the live world:\nbefore %q\nafter  %q", before, st.Fingerprint)
	}
	if len(st.WatcherFlags) != 0 {
		t.Fatalf("mutant findings leaked into the live world's watcher: %v", st.WatcherFlags)
	}

	snap := d.metricsSnapshot()
	if snap.MutantRuns != 1 || snap.MutantFlagged != 1 {
		t.Fatalf("mutant accounting: %+v", snap)
	}
	if snap.ExecuteErrors != 0 {
		t.Fatalf("mutant run miscounted as an execute error: %+v", snap)
	}
}

// TestPermutePlanMutantFlagged reverses every acquisition plan for one
// request against the accounts program, whose transfer section takes two
// locks: the Watcher's canonical-order assertion fires on the out-of-order
// grant.
func TestPermutePlanMutantFlagged(t *testing.T) {
	d := newDaemon(t, server.Config{})
	accounts := d.submit("globex", "accounts", source(t, "accounts"))
	w := d.world("globex", accounts.ID, server.EngineMGL, &server.SpecJSON{Fn: "init"})

	resp := d.execute(server.ExecuteRequest{
		Tenant: "globex", World: w.ID,
		Threads: []server.SpecJSON{
			{Fn: "worker", Args: []int64{10}},
			{Fn: "worker", Args: []int64{10}},
		},
		Mutate: server.MutatePermutePlan,
	})
	if len(resp.Flags) == 0 {
		t.Fatalf("permute-plan mutant ran unflagged: the oracle has a gap")
	}

	// Same request without the fault: clean.
	clean := d.execute(server.ExecuteRequest{
		Tenant: "globex", World: w.ID,
		Threads: []server.SpecJSON{
			{Fn: "worker", Args: []int64{10}},
			{Fn: "worker", Args: []int64{10}},
		},
	})
	if len(clean.Flags) != 0 {
		t.Fatalf("clean run flagged: %v", clean.Flags)
	}
	if st := d.state(w.ID); len(st.WatcherFlags) != 0 {
		t.Fatalf("clean world accumulated watcher flags: %v", st.WatcherFlags)
	}

	snap := d.metricsSnapshot()
	if snap.MutantRuns != 1 || snap.MutantFlagged != 1 {
		t.Fatalf("mutant accounting: %+v", snap)
	}
}
