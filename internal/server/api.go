// The wire types of the lockinferd HTTP/JSON protocol. They live in their
// own file so the daemon's clients — the load generator, the bench
// harness, the CI smoke script and the tests — marshal exactly the shapes
// the handlers unmarshal.
package server

// SubmitRequest registers a program source with the daemon. Identical
// sources (same source text and k) are deduplicated across tenants: the
// compile runs once, through the shared pipeline artifact cache, and every
// tenant's submission resolves to the same program id.
type SubmitRequest struct {
	// Tenant namespaces the submission for accounting; it does not shard
	// the artifact cache (sharing it across tenants is the point).
	Tenant string `json:"tenant"`
	// Name labels the program in diagnostics (a corpus name, a client id).
	Name string `json:"name,omitempty"`
	// Source is the mini-C program text.
	Source string `json:"source"`
	// K bounds fine-grain lock expression length (0 with KSet false means
	// the pipeline default of 3).
	K    int  `json:"k,omitempty"`
	KSet bool `json:"k_set,omitempty"`
}

// SubmitResponse describes the registered program.
type SubmitResponse struct {
	// ID is the content-addressed program id ("p-<hash12>-k<k>").
	ID string `json:"id"`
	// Sections is the number of atomic sections the compile found.
	Sections int `json:"sections"`
	// Locks is the total lock count over all section plans.
	Locks int `json:"locks"`
	// Deduped reports that an identical program was already registered and
	// no new compile ran (or this call joined one in flight).
	Deduped bool `json:"deduped,omitempty"`
}

// WorldRequest creates a long-lived execution world: one program instance
// (globals initialized, setup run once) that subsequent execute requests
// mutate concurrently under the selected engine.
type WorldRequest struct {
	Tenant  string `json:"tenant"`
	Program string `json:"program"`
	// Engine is one of "mgl" (default), "stm", "hybrid", "native". Native
	// worlds compile the program to a real binary; each execute is a full
	// out-of-process run, so their state is per-request, not long-lived.
	Engine string `json:"engine,omitempty"`
	// Setup optionally names a function run single-threaded at creation.
	Setup *SpecJSON `json:"setup,omitempty"`
}

// SpecJSON is one thread entry point: a function name and integer args.
type SpecJSON struct {
	Fn   string  `json:"fn"`
	Args []int64 `json:"args,omitempty"`
}

// WorldResponse describes the created world.
type WorldResponse struct {
	ID      string `json:"id"`
	Program string `json:"program"`
	Engine  string `json:"engine"`
}

// ExecuteRequest runs thread specs against a world's shared state.
type ExecuteRequest struct {
	Tenant string `json:"tenant"`
	World  string `json:"world"`
	// Threads run concurrently, one goroutine each, against the world's
	// live state.
	Threads []SpecJSON `json:"threads"`
	// TimeoutMS overrides the server's per-request execution timeout
	// (bounded by it, never extended).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Mutate injects a fault for this request only: "drop-locks" empties
	// every section plan, "permute-plan" reverses every acquisition plan.
	// The mutated run executes on an ephemeral copy of the world's program
	// (fresh state, full oracle stack) so a flagged mutant never corrupts
	// the live world. Empty means a normal execution.
	Mutate string `json:"mutate,omitempty"`
	// Refine closes the runtime→inference feedback loop before this
	// request's threads run: the world quiesces, its accumulated runtime
	// lock profile feeds the profile-guided refinement pass, and the
	// refined plan replaces the live one. Rejected for native worlds (their
	// plan is compiled into the binary) and for mutant runs.
	Refine bool `json:"refine,omitempty"`
}

// ExecuteResponse reports one completed execution.
type ExecuteResponse struct {
	World     string `json:"world"`
	Engine    string `json:"engine"`
	ElapsedNS int64  `json:"elapsed_ns"`
	// Flags are the dynamic-oracle findings of this run: soundness
	// violations, deadlocks, runtime errors — and, for mutant runs, the
	// Watcher findings of the ephemeral machine.
	Flags []string `json:"flags,omitempty"`
	// State is the final fingerprint, returned only by runs that end
	// quiescent by construction (native one-shot executions, mutant runs).
	State string `json:"state,omitempty"`
	// Mutate echoes the injected fault of a mutant run.
	Mutate string `json:"mutate,omitempty"`
	// Refined is the refinement decision log when the request asked for
	// refine: one line per demotion or split, ["no change"] when the
	// profile justified no rewrite.
	Refined []string `json:"refined,omitempty"`
}

// StateResponse is the quiesced fingerprint of a world.
type StateResponse struct {
	World string `json:"world"`
	// Fingerprint is interp.StateDump over the world's shared state; the
	// serial-replay conformance check compares against it.
	Fingerprint string `json:"fingerprint"`
	// Executes counts completed execute requests; Detached is the number
	// still running after their requests timed out (must be zero for the
	// fingerprint to be meaningful).
	Executes int64 `json:"executes"`
	Detached int64 `json:"detached"`
	// WatcherFlags are the world's accumulated deadlock-monitor findings
	// (lock-order cycles, canonical-order violations, deadlocks).
	WatcherFlags []string `json:"watcher_flags,omitempty"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	OK       bool  `json:"ok"`
	UptimeMS int64 `json:"uptime_ms"`
	InFlight int64 `json:"in_flight"`
	Programs int64 `json:"programs"`
	Worlds   int64 `json:"worlds"`
	Draining bool  `json:"draining"`
}

// ErrorBody is the uniform error envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a machine-readable error classification. Compile
// failures surface the pipeline's own structured attribution: Kind
// "pipeline" with Pass naming the failing pass.
type ErrorDetail struct {
	// Kind is "bad-request", "pipeline", "codegen", "not-found",
	// "forbidden", "overloaded", "draining", "timeout" or "internal".
	Kind string `json:"kind"`
	// Pass is the failing pipeline pass for Kind "pipeline".
	Pass string `json:"pass,omitempty"`
	// Name is the compilation label for Kind "pipeline".
	Name    string `json:"name,omitempty"`
	Message string `json:"message"`
}
