// The runtime→inference feedback loop over the HTTP surface: worlds
// profile their lock runtime from birth, GET /metrics exports the per-world
// locks.Profile, and an execute request with refine: true rewrites the live
// world's plan through the profile-guided refinement pass.
package server_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"lockinfer/internal/server"
)

// TestMetricsExportWorldProfiles checks that every in-process world's
// runtime lock profile appears under GET /metrics with real counters, and
// that native worlds (out-of-process execution) are absent.
func TestMetricsExportWorldProfiles(t *testing.T) {
	d := newDaemon(t, server.Config{})
	accounts := d.submit("acme", "accounts", source(t, "accounts"))
	w := d.world("acme", accounts.ID, server.EngineMGL, &server.SpecJSON{Fn: "init"})
	nat := d.world("acme", accounts.ID, server.EngineNative, &server.SpecJSON{Fn: "init"})

	resp := d.execute(server.ExecuteRequest{
		Tenant:  "acme",
		World:   w.ID,
		Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{3}}, {Fn: "worker", Args: []int64{3}}},
	})
	if len(resp.Flags) != 0 {
		t.Fatalf("execute flagged: %v", resp.Flags)
	}

	snap := d.metricsSnapshot()
	prof := snap.WorldProfiles[w.ID]
	if prof == nil {
		t.Fatalf("no profile for world %s in /metrics (have %d profiles)", w.ID, len(snap.WorldProfiles))
	}
	if prof.TotalAcquires() == 0 {
		t.Error("world profile reports zero lock acquires after an execute")
	}
	if len(prof.Sections) == 0 {
		t.Error("world profile reports no section counters")
	}
	runs := int64(0)
	for _, sp := range prof.Sections {
		runs += sp.Runs
	}
	if runs == 0 {
		t.Error("world profile reports zero section runs")
	}
	if _, ok := snap.WorldProfiles[nat.ID]; ok {
		t.Errorf("native world %s exported a profile; its executions run out of process", nat.ID)
	}
}

// TestExecuteRefine closes the loop over the wire: after uncontended
// executions the fine account locks profile cold, refine: true demotes them
// to their Σ≡ partition on the live world, a second refine is a no-op, and
// the refined world keeps executing soundly.
func TestExecuteRefine(t *testing.T) {
	d := newDaemon(t, server.Config{})
	accounts := d.submit("acme", "accounts", source(t, "accounts"))
	w := d.world("acme", accounts.ID, server.EngineMGL, &server.SpecJSON{Fn: "init"})

	// Build up an uncontended profile: fine acquires, no waits.
	for i := 0; i < 3; i++ {
		resp := d.execute(server.ExecuteRequest{
			Tenant:  "acme",
			World:   w.ID,
			Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{4}}},
		})
		if len(resp.Flags) != 0 {
			t.Fatalf("warmup execute flagged: %v", resp.Flags)
		}
	}

	refined := d.execute(server.ExecuteRequest{
		Tenant:  "acme",
		World:   w.ID,
		Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{4}}},
		Refine:  true,
	})
	if len(refined.Flags) != 0 {
		t.Fatalf("refined execute flagged: %v", refined.Flags)
	}
	if len(refined.Refined) == 0 {
		t.Fatal("refine returned no decision log")
	}
	sawDemote := false
	for _, line := range refined.Refined {
		if strings.HasPrefix(line, "demote ") {
			sawDemote = true
		}
	}
	if !sawDemote {
		t.Errorf("cold fine locks were not demoted; decisions: %v", refined.Refined)
	}

	// The rewrite converged: a second refine has nothing left to do.
	again := d.execute(server.ExecuteRequest{
		Tenant:  "acme",
		World:   w.ID,
		Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{4}}},
		Refine:  true,
	})
	if len(again.Refined) != 1 || again.Refined[0] != "no change" {
		t.Errorf("second refine decisions = %v, want [no change]", again.Refined)
	}

	// The refined world still executes soundly under the checker, and its
	// state survived the plan swap.
	after := d.execute(server.ExecuteRequest{
		Tenant:  "acme",
		World:   w.ID,
		Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{4}}, {Fn: "worker", Args: []int64{4}}},
	})
	if len(after.Flags) != 0 {
		t.Fatalf("post-refine execute flagged: %v", after.Flags)
	}
	if st := d.state(w.ID); st.Fingerprint == "" {
		t.Error("refined world lost its fingerprint")
	}

	if snap := d.metricsSnapshot(); snap.Refines != 2 {
		t.Errorf("metrics report %d refines, want 2", snap.Refines)
	}
}

// TestRefineRejections pins the refine option's error contract: native
// worlds (plan baked into the binary) and mutant combinations answer 400.
func TestRefineRejections(t *testing.T) {
	d := newDaemon(t, server.Config{})
	accounts := d.submit("acme", "accounts", source(t, "accounts"))
	mglWorld := d.world("acme", accounts.ID, server.EngineMGL, &server.SpecJSON{Fn: "init"})
	nat := d.world("acme", accounts.ID, server.EngineNative, &server.SpecJSON{Fn: "init"})

	body := func(req server.ExecuteRequest) []byte {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	det := d.wantError("POST", "/v1/execute", body(server.ExecuteRequest{
		Tenant:  "acme",
		World:   nat.ID,
		Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{1}}},
		Refine:  true,
	}), http.StatusBadRequest, "bad-request")
	if !strings.Contains(det.Message, "native") {
		t.Errorf("native refine rejection message %q does not explain the engine", det.Message)
	}
	d.wantError("POST", "/v1/execute", body(server.ExecuteRequest{
		Tenant:  "acme",
		World:   mglWorld.ID,
		Threads: []server.SpecJSON{{Fn: "worker", Args: []int64{1}}},
		Mutate:  server.MutateDropLocks,
		Refine:  true,
	}), http.StatusBadRequest, "bad-request")
}
