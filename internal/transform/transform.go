// Package transform implements the program transformation of §4.1: each
// atomic section is replaced by a to-acquire/acquire-all preamble carrying
// the inferred lock descriptors and a release-all at the section end. The
// output is the paper's target language rendered as surface syntax; the
// interpreter and the native runtimes consume the structured form (the
// per-section lock sets) directly.
package transform

import (
	"fmt"
	"strings"

	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/mgl"
)

// SectionLocks collects per-section lock sets keyed by section id, the
// structured transformation result used by the runtimes.
func SectionLocks(results []*infer.Result) map[int]locks.Set {
	out := make(map[int]locks.Set, len(results))
	for _, r := range results {
		out[r.Section.ID] = r.Locks
	}
	return out
}

// GlobalLockPlan returns a plan protecting every section with the single
// global lock (the paper's "Global" baseline).
func GlobalLockPlan(prog *ir.Program) map[int]locks.Set {
	out := map[int]locks.Set{}
	for _, sec := range prog.Sections {
		out[sec.ID] = locks.NewSet(locks.GlobalLock())
	}
	return out
}

// Coarsen converts a plan to coarse-only locks (the k=0 "Coarse" baseline
// shape): every fine lock is replaced by its class lock.
func Coarsen(plan map[int]locks.Set) map[int]locks.Set {
	out := map[int]locks.Set{}
	for id, set := range plan {
		ns := locks.NewSet()
		for _, l := range set.Sorted() {
			if l.Fine {
				ns.Add(locks.CoarseLock(l.Class, l.Eff))
			} else {
				ns.Add(l)
			}
		}
		out[id] = ns.Minimize()
	}
	return out
}

// DropLock returns a copy of the plan with every lock whose rendered form
// (Inferred.String, e.g. "pts#3/rw") contains name removed from every
// section. This is the soundness-test mutation operator: forgetting an
// inferred lock must make the concurrency oracle fire (Theorem 1 run in
// reverse).
func DropLock(plan map[int]locks.Set, name string) map[int]locks.Set {
	out := make(map[int]locks.Set, len(plan))
	for id, set := range plan {
		ns := set.Clone()
		for _, l := range set.Sorted() {
			if strings.Contains(l.String(), name) {
				ns.Remove(l)
			}
		}
		out[id] = ns
	}
	return out
}

// StaticReqs lowers one section's inferred lock set to runtime descriptors
// without executing anything: coarse and global locks translate directly,
// and each distinct fine path within a class is assigned a small synthetic
// address in the deterministic Sorted order (two fine locks on the same
// path share an address, just as their runtime evaluations would share a
// cell). The result feeds mgl.BuildPlan so the static auditor can analyze
// the exact plan shape the runtime would acquire.
func StaticReqs(set locks.Set) []mgl.Req {
	addrs := map[string]uint64{}
	next := uint64(1)
	var reqs []mgl.Req
	for _, l := range set.Sorted() {
		switch {
		case l.IsGlobal():
			reqs = append(reqs, mgl.Req{Global: true, Write: true})
		case l.IsShard():
			// Shards already have canonical runtime addresses.
			reqs = append(reqs, mgl.Req{
				Class: mgl.ClassID(l.Class), Fine: true, Addr: mgl.ShardAddr(l.Shard), Write: l.Eff == locks.RW,
			})
		case !l.Fine:
			reqs = append(reqs, mgl.Req{Class: mgl.ClassID(l.Class), Write: l.Eff == locks.RW})
		default:
			key := fmt.Sprintf("%d|%s", l.Class, l.Path.Key())
			addr, ok := addrs[key]
			if !ok {
				addr = next
				next++
				addrs[key] = addr
			}
			reqs = append(reqs, mgl.Req{
				Class: mgl.ClassID(l.Class), Fine: true, Addr: addr, Write: l.Eff == locks.RW,
			})
		}
	}
	return reqs
}

// StaticPlan builds the canonical acquisition plan for one section's lock
// set, with synthetic fine addresses (see StaticReqs).
func StaticPlan(set locks.Set) []mgl.PlanStep {
	return mgl.BuildPlan(StaticReqs(set))
}

// Source renders the transformed program: the original program with every
// atomic section rewritten to the acquireAll/releaseAll form, lock
// descriptors spelled out as in Figure 1(c).
func Source(prog *ir.Program, results []*infer.Result) string {
	byPos := map[lang.Pos]*infer.Result{}
	for _, r := range results {
		byPos[r.Section.Pos] = r
	}
	pr := lang.Printer{
		AtomicHook: func(a *lang.AtomicStmt) (header, footer []string, replace bool) {
			r, ok := byPos[a.Pos]
			if !ok {
				return nil, nil, false
			}
			for _, l := range r.Locks.Sorted() {
				header = append(header, "to_acquire("+descriptor(prog, l)+");")
			}
			header = append(header, "acquire_all();")
			footer = []string{"release_all();"}
			return header, footer, true
		},
	}
	return pr.Program(prog.Source)
}

// descriptor renders one lock descriptor triple (§5.2): address expression
// or partition, the partition id, and the effect.
func descriptor(prog *ir.Program, l locks.Inferred) string {
	switch {
	case l.IsGlobal():
		return "GLOBAL, rw"
	case l.IsShard():
		return fmt.Sprintf("pts#%d.s%d, %s", l.Class, l.Shard, l.Eff)
	case l.Fine:
		expr := l.Path.CellString(func(f ir.FieldID) string {
			if f < 0 {
				return ir.ElemFieldName
			}
			return prog.FieldName(f)
		})
		return fmt.Sprintf("%s, pts#%d, %s", expr, l.Class, l.Eff)
	default:
		return fmt.Sprintf("pts#%d, %s", l.Class, l.Eff)
	}
}
