package transform

import (
	"strings"
	"testing"

	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
)

const moveSrc = `
struct elem { elem* next; int* data; }
struct list { elem* head; }

void move(list* from, list* to) {
  atomic {
    elem* x = to->head;
    elem* y = from->head;
    from->head = null;
    if (x == null) {
      to->head = y;
    } else {
      while (x->next != null) {
        x = x->next;
      }
      x->next = y;
    }
  }
}
`

func compile(t *testing.T, src string, k int) (*ir.Program, []*infer.Result) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	pts := steens.Run(prog)
	return prog, infer.New(prog, pts, infer.Options{K: k}).AnalyzeAll()
}

// TestSourceFig1c checks the transformed output has the Figure 1(c) shape.
func TestSourceFig1c(t *testing.T) {
	prog, results := compile(t, moveSrc, 3)
	out := Source(prog, results)
	for _, want := range []string{
		"to_acquire(&(to->head)",
		"to_acquire(&(from->head)",
		"to_acquire(pts#", // the coarse E lock
		"acquire_all();",
		"release_all();",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transformed source missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "atomic {") {
		t.Error("atomic keyword survived the transformation")
	}
	// The output must still order acquire_all before the body and
	// release_all at the end of the block.
	if strings.Index(out, "acquire_all();") > strings.Index(out, "elem* x = to->head;") {
		t.Error("acquire_all does not precede the section body")
	}
}

// TestSectionLocksKeys checks the structured plan covers every section.
func TestSectionLocksKeys(t *testing.T) {
	prog, results := compile(t, moveSrc, 3)
	plan := SectionLocks(results)
	if len(plan) != len(prog.Sections) {
		t.Fatalf("plan has %d sections, want %d", len(plan), len(prog.Sections))
	}
	for id, set := range plan {
		if len(set) == 0 {
			t.Errorf("section %d has no locks", id)
		}
	}
}

// TestGlobalLockPlan checks the baseline plan.
func TestGlobalLockPlan(t *testing.T) {
	prog, _ := compile(t, moveSrc, 3)
	plan := GlobalLockPlan(prog)
	for id, set := range plan {
		if len(set) != 1 {
			t.Fatalf("section %d: %d locks, want 1", id, len(set))
		}
		for _, l := range set {
			if !l.IsGlobal() || l.Eff != locks.RW {
				t.Errorf("section %d: lock %s is not the global rw lock", id, l)
			}
		}
	}
}

// TestCoarsen checks that coarsening removes fine locks but keeps their
// classes and effects covered.
func TestCoarsen(t *testing.T) {
	_, results := compile(t, moveSrc, 3)
	plan := SectionLocks(results)
	coarse := Coarsen(plan)
	for id, set := range coarse {
		for _, l := range set {
			if l.Fine {
				t.Errorf("section %d: fine lock %s survived coarsening", id, l)
			}
		}
		// Every original lock must be dominated by some coarse lock.
		for _, orig := range plan[id] {
			covered := false
			for _, c := range set {
				if orig.Leq(c) || (!c.Fine && c.Class == orig.Class && orig.Eff.Leq(c.Eff)) {
					covered = true
				}
			}
			if !covered {
				t.Errorf("section %d: %s not covered after coarsening", id, orig)
			}
		}
	}
}
