package progs

import (
	"strings"
	"testing"

	"lockinfer/internal/infer"
	"lockinfer/internal/interp"
	"lockinfer/internal/locks"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// TestCorpusCompiles parses, lowers and analyzes every program and checks
// the atomic section counts against Table 1.
func TestCorpusCompiles(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			c, err := Compile(p, 3)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(c.IR.Sections); got != p.Sections {
				t.Errorf("%s: %d atomic sections, want %d", p.Name, got, p.Sections)
			}
			for _, r := range c.Results {
				if len(r.Locks) == 0 && p.Name != "move" {
					// Every section of the corpus accesses shared state.
					t.Errorf("%s: section %d inferred no locks", p.Name, r.Section.ID)
				}
			}
		})
	}
}

// TestCorpusSoundness is the Theorem 1 property test: every program, at
// several k values, runs concurrently under its inferred locks with the
// checked interpreter, and no unprotected shared access may occur.
func TestCorpusSoundness(t *testing.T) {
	ops := 40
	threads := 4
	if testing.Short() {
		ops = 10
		threads = 2
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, k := range []int{0, 1, 3, 9} {
				c, err := Compile(p, k)
				if err != nil {
					t.Fatal(err)
				}
				m := interp.NewMachine(c.IR, c.Pts, transform.SectionLocks(c.Results))
				m.Checked = true
				if err := m.Init(); err != nil {
					t.Fatalf("k=%d init: %v", k, err)
				}
				if p.Setup != "" {
					args := make([]interp.Value, len(p.SetupArgs))
					for i, a := range p.SetupArgs {
						args[i] = interp.IntV(a)
					}
					if _, err := m.Call(0, p.Setup, args); err != nil {
						t.Fatalf("k=%d setup: %v", k, err)
					}
				}
				specs := make([]interp.ThreadSpec, threads)
				for i := range specs {
					raw := p.WorkerArgs(i, ops)
					args := make([]interp.Value, len(raw))
					for j, a := range raw {
						args[j] = interp.IntV(a)
					}
					specs[i] = interp.ThreadSpec{Fn: p.Worker, Args: args}
				}
				if err := m.Run(specs); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
			}
		})
	}
}

// TestMoveAtomicityEndToEnd checks the move program's conservation
// invariant under the inferred locks.
func TestMoveAtomicityEndToEnd(t *testing.T) {
	p, err := Get("move")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(c.IR, c.Pts, transform.SectionLocks(c.Results))
	m.Checked = true
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(0, "setup", []interp.Value{interp.IntV(16)}); err != nil {
		t.Fatal(err)
	}
	specs := []interp.ThreadSpec{
		{Fn: "worker", Args: []interp.Value{interp.IntV(50), interp.IntV(0)}},
		{Fn: "worker", Args: []interp.Value{interp.IntV(50), interp.IntV(1)}},
		{Fn: "worker", Args: []interp.Value{interp.IntV(50), interp.IntV(0)}},
	}
	if err := m.Run(specs); err != nil {
		t.Fatal(err)
	}
	v, err := m.Call(0, "total", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 16 {
		t.Errorf("total = %s, want 16", v)
	}
}

// TestHashtable2FinePutLock cross-checks the native workload's descriptor
// choice: at k=9 the put section carries a fine rw lock on the bucket cell
// with a symbolic index, while get keeps a coarse ro lock.
func TestHashtable2FinePutLock(t *testing.T) {
	p, err := Get("hashtable-2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	var putLocks, getLocks locks.Set
	for _, r := range c.Results {
		fn := r.Section.Fn.Name
		if fn == "put" {
			putLocks = r.Locks
		}
		if fn == "get" {
			getLocks = r.Locks
		}
	}
	foundFineBucket := false
	for _, l := range putLocks.Sorted() {
		if l.Fine && l.Eff == locks.RW && strings.Contains(l.String(), "[") {
			foundFineBucket = true
		}
		if !l.Fine && l.Eff == locks.RW {
			t.Errorf("put carries a coarse rw lock %s; expected fine-grain only", l)
		}
	}
	if !foundFineBucket {
		t.Errorf("put lacks the fine indexed bucket lock: %v", putLocks.Strings(c.IR))
	}
	foundCoarseRO := false
	for _, l := range getLocks.Sorted() {
		if !l.Fine && l.Eff == locks.RO {
			foundCoarseRO = true
		}
		if l.Eff == locks.RW {
			t.Errorf("get carries a rw lock %s; the section is read-only", l)
		}
	}
	if !foundCoarseRO {
		t.Errorf("get lacks the coarse ro traversal lock: %v", getLocks.Strings(c.IR))
	}
}

// TestMicroBenchmarksCoarsen cross-checks that the unbounded-traversal
// sections of list, rbtree and hashtable coarsen at k=9, with read-only
// effect for the get sections — the lock shapes the native workloads use.
func TestMicroBenchmarksCoarsen(t *testing.T) {
	for _, name := range []string{"list", "rbtree", "hashtable"} {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(p, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range c.Results {
			fn := r.Section.Fn.Name
			hasCoarse := false
			for _, l := range r.Locks.Sorted() {
				if !l.Fine {
					hasCoarse = true
					if fn == "get" && l.Eff != locks.RO {
						t.Errorf("%s.get coarse lock is %s, want ro", name, l.Eff)
					}
					if (fn == "put" || fn == "remove") && l.Eff != locks.RW {
						// A section may carry extra ro coarse locks for
						// disjoint partitions; only flag the main one if no
						// rw coarse lock exists at all.
						continue
					}
				}
			}
			if !hasCoarse && (fn == "get" || fn == "put" || fn == "remove") {
				t.Errorf("%s.%s did not coarsen: %v", name, fn, r.Locks.Strings(c.IR))
			}
		}
	}
}

// TestTHDisjointPartitions checks the TH property the paper highlights:
// tree sections and table sections lock disjoint partitions.
func TestTHDisjointPartitions(t *testing.T) {
	p, err := Get("TH")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	classesOf := func(fn string) map[int]bool {
		out := map[int]bool{}
		for _, r := range c.Results {
			if r.Section.Fn.Name == fn {
				for _, l := range r.Locks.Sorted() {
					out[int(l.Class)] = true
				}
			}
		}
		return out
	}
	tree := classesOf("treePut")
	table := classesOf("tablePut")
	if len(tree) == 0 || len(table) == 0 {
		t.Fatal("missing lock classes for TH sections")
	}
	for cl := range tree {
		if table[cl] {
			t.Errorf("tree and table share lock class %d; partitions must be disjoint", cl)
		}
	}
}

// TestCorpusLineCounts sanity-checks the Lines helper.
func TestCorpusLineCounts(t *testing.T) {
	for _, p := range All() {
		if p.Lines() < 30 {
			t.Errorf("%s: implausibly small line count %d", p.Name, p.Lines())
		}
	}
}

// TestGenericEngineCoversCorpus runs the generic (scheme-parameterized)
// flow-insensitive engine at Σ≡ × Σε over every corpus section and checks
// it covers the specialized engine's k=0 coarse solution — the two
// instantiations of the paper's framework must agree where their domains
// overlap.
func TestGenericEngineCoversCorpus(t *testing.T) {
	for _, p := range All() {
		c, err := Compile(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		sch := locks.Product{S1: locks.PointsScheme{A: c.Pts}, S2: locks.EffScheme{}}
		for _, r := range c.Results {
			generic := infer.FlowInsensitive(c.IR, r.Section, sch)
			covers := func(cls steens.NodeID, eff locks.Eff) bool {
				for _, g := range generic {
					pl := g.(locks.PairLock)
					ptsL := pl.A.(locks.PointsLock)
					effL := pl.B.(locks.EffLock)
					if (ptsL.Top || c.Pts.Rep(ptsL.Class) == c.Pts.Rep(cls)) &&
						eff.Leq(effL.Eff) {
						return true
					}
				}
				return false
			}
			for _, l := range r.Locks.Sorted() {
				if l.IsGlobal() {
					continue
				}
				if !covers(l.Class, l.Eff) {
					t.Errorf("%s section %d: %s not covered by generic engine",
						p.Name, r.Section.ID, l)
				}
			}
		}
	}
}
