// Package progs holds the mini-C benchmark corpus: the paper's worked
// examples (Figures 1 and 2) and mini-C versions of the STAMP-like kernels
// and micro-benchmarks of §6.1. The corpus drives the analysis-side
// experiments (Table 1 and Figure 7), the end-to-end soundness property
// tests (compile, infer, transform, execute checked), and the cross-checks
// that tie the native workloads' lock descriptors to the compiler's
// inferred locks.
package progs

import (
	"embed"
	"fmt"

	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/steens"
)

//go:embed src/*.minic
var sources embed.FS

// Prog is one corpus program plus the harness metadata needed to execute it
// concurrently under the interpreter.
type Prog struct {
	Name string
	File string
	// Sections is the expected number of atomic sections (Table 1).
	Sections int
	// Setup optionally names a function run single-threaded before the
	// workers, with SetupArgs.
	Setup     string
	SetupArgs []int64
	// Worker names the per-thread entry function; WorkerArgs yields its
	// arguments for thread i running ops operations.
	Worker     string
	WorkerArgs func(thread, ops int) []int64
}

// Source returns the program text.
func (p Prog) Source() string {
	b, err := sources.ReadFile("src/" + p.File)
	if err != nil {
		panic("progs: missing embedded source " + p.File)
	}
	return string(b)
}

// mixArgs builds worker args (ops, seed, mixGet, mixPut) for the
// data-structure micro-benchmarks.
func mixArgs(get, put int64) func(thread, ops int) []int64 {
	return func(thread, ops int) []int64 {
		return []int64{int64(ops), int64(thread*7919 + 13), get, put}
	}
}

// seedArgs builds worker args (ops, seed) for the kernels.
func seedArgs() func(thread, ops int) []int64 {
	return func(thread, ops int) []int64 {
		return []int64{int64(ops), int64(thread*104729 + 7)}
	}
}

// All returns the corpus in the display order of Table 1's middle and
// bottom sections, followed by the worked examples.
func All() []Prog {
	return []Prog{
		{Name: "vacation", File: "vacation.minic", Sections: 3,
			Setup: "init", Worker: "worker", WorkerArgs: seedArgs()},
		{Name: "genome", File: "genome.minic", Sections: 5,
			Setup: "init", Worker: "worker", WorkerArgs: seedArgs()},
		{Name: "kmeans", File: "kmeans.minic", Sections: 3,
			Setup: "init", Worker: "worker", WorkerArgs: seedArgs()},
		{Name: "bayes", File: "bayes.minic", Sections: 7,
			Setup: "init", Worker: "worker", WorkerArgs: seedArgs()},
		{Name: "labyrinth", File: "labyrinth.minic", Sections: 3,
			Setup: "init", Worker: "worker", WorkerArgs: seedArgs()},
		{Name: "hashtable", File: "hashtable.minic", Sections: 4,
			Setup: "init", Worker: "worker", WorkerArgs: mixArgs(66, 17)},
		{Name: "rbtree", File: "rbtree.minic", Sections: 4,
			Setup: "init", Worker: "worker", WorkerArgs: mixArgs(66, 17)},
		{Name: "list", File: "list.minic", Sections: 4,
			Setup: "init", Worker: "worker", WorkerArgs: mixArgs(66, 17)},
		{Name: "hashtable-2", File: "hashtable2.minic", Sections: 4,
			Setup: "init", Worker: "worker", WorkerArgs: mixArgs(17, 66)},
		{Name: "TH", File: "th.minic", Sections: 7,
			Setup: "init", Worker: "worker", WorkerArgs: mixArgs(17, 66)},
		{Name: "move", File: "move.minic", Sections: 2,
			Setup: "setup", SetupArgs: []int64{16}, Worker: "worker",
			WorkerArgs: func(thread, ops int) []int64 {
				return []int64{int64(ops), int64(thread % 2)}
			}},
		{Name: "fig2", File: "fig2.minic", Sections: 1,
			Worker: "worker", WorkerArgs: seedArgs()},
	}
}

// Examples returns the documentation programs (the sources the runnable
// examples under examples/ compile): the two-account transfer of Figure
// 1's flavor and a minimal shared counter. They are kept out of All() so
// Table 1 reproductions and corpus-shape assertions see only the benchmark
// corpus, but the audit and conformance tooling can still sweep them.
func Examples() []Prog {
	return []Prog{
		{Name: "accounts", File: "accounts.minic", Sections: 2,
			Setup: "init", Worker: "worker",
			WorkerArgs: func(thread, ops int) []int64 { return []int64{int64(ops)} }},
		{Name: "counter", File: "counter.minic", Sections: 1,
			Worker:     "bump",
			WorkerArgs: func(thread, ops int) []int64 { return []int64{int64(ops)} }},
	}
}

// Get returns the named corpus or example program.
func Get(name string) (Prog, error) {
	for _, p := range append(All(), Examples()...) {
		if p.Name == name {
			return p, nil
		}
	}
	return Prog{}, fmt.Errorf("progs: no program %q", name)
}

// Compiled bundles the outputs of the full compilation pipeline.
type Compiled struct {
	Prog    Prog
	IR      *ir.Program
	Pts     *steens.Analysis
	Results []*infer.Result
	// C is the underlying pipeline compilation (derived passes, traces).
	C *pipeline.Compilation
}

// Compile runs the pipeline on the program at the given k.
func Compile(p Prog, k int) (*Compiled, error) {
	c, err := pipeline.Compile(p.Source(), pipeline.Options{Name: p.Name}.WithK(k))
	if err != nil {
		return nil, err
	}
	return &Compiled{Prog: p, IR: c.Program, Pts: c.Points, Results: c.Results, C: c}, nil
}

// Lines returns the program's line count (the corpus "KLoC" column of our
// Table 1 reproduction).
func (p Prog) Lines() int {
	src := p.Source()
	n := 1
	for _, c := range src {
		if c == '\n' {
			n++
		}
	}
	return n
}
