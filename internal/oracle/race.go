// Package oracle is the dynamic concurrency oracle for the inferred-lock
// runtime: a vector-clock happens-before race detector over the checking
// interpreter's shared accesses, the mgl deadlock monitor (waits-for graph
// and lock-order assertions, see internal/mgl.Watcher), and a DPOR-lite
// systematic scheduler that enumerates preemption-bounded interleavings of
// small programs. Together they test the paper's Theorem 1 directly: under
// the inferred locks, no pair of atomic sections races and no schedule
// deadlocks — and when the lock plan is artificially weakened, the oracle
// fires.
package oracle

import (
	"fmt"
	"sync"

	"lockinfer/internal/interp"
	"lockinfer/internal/lang"
	"lockinfer/internal/mgl"
	"lockinfer/internal/steens"
)

// VC is a vector clock, indexed by thread id.
type VC []uint64

func (v VC) get(i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// join merges o into v, growing as needed, and returns v.
func (v VC) join(o VC) VC {
	for len(v) < len(o) {
		v = append(v, 0)
	}
	for i, c := range o {
		if c > v[i] {
			v[i] = c
		}
	}
	return v
}

// bump increments component i, growing as needed, and returns v.
func (v VC) bump(i int) VC {
	for len(v) <= i {
		v = append(v, 0)
	}
	v[i]++
	return v
}

// Site is one endpoint of a race: a dynamic access with its source
// location.
type Site struct {
	Thread int
	Write  bool
	Atomic bool
	Fn     string
	Pos    lang.Pos
	What   string
}

func (s Site) String() string {
	op := "read"
	if s.Write {
		op = "write"
	}
	where := "outside atomic"
	if s.Atomic {
		where = "in atomic"
	}
	return fmt.Sprintf("thread %d %s of %s at %s:%s (%s)", s.Thread, op, s.What, s.Fn, s.Pos, where)
}

// Race is a pair of conflicting accesses to the same cell not ordered by
// happens-before.
type Race struct {
	Class steens.NodeID
	Prev  Site
	Cur   Site
	Count int // dynamic occurrences of this (Prev, Cur) location pair
}

func (r Race) String() string {
	return fmt.Sprintf("race on pts#%d: %s || %s", r.Class, r.Prev, r.Cur)
}

// lockKey identifies one node of the lock hierarchy.
type lockKey struct {
	kind  int
	class mgl.ClassID
	addr  uint64
}

// lockState keeps, per node, the joined vector clock of every release in
// each mode. An acquire in mode m synchronizes with all earlier releases in
// modes incompatible with m — precisely the pairs the hierarchical protocol
// orders.
type lockState struct {
	rel [6]VC
}

// epoch is a FastTrack-style scalar clock: thread t at clock c.
type epoch struct {
	tid int
	clk uint64
}

// cellState is the per-address detector state.
type cellState struct {
	class     steens.NodeID
	lastWrite epoch
	writeSite Site
	// reads[t] is t's clock at its last read since the last write.
	reads     map[int]uint64
	readSites map[int]Site
}

// RaceDetector is a happens-before race detector implementing
// interp.Tracer. Happens-before edges come from thread forks/joins and from
// the mgl lock hierarchy: a section's release of a node synchronizes with
// every later acquisition of that node in an incompatible mode. Two
// conflicting accesses to one cell with no such ordering are a race.
//
// By default only pairs where BOTH endpoints executed inside atomic
// sections are reported: that is the scope of the paper's Theorem 1 (the
// model assumes all shared accesses occur in atomic sections; a racy access
// outside any section is a property of the input program, not of the
// inferred locks). Set ReportNonAtomic to flag those too.
type RaceDetector struct {
	// ReportNonAtomic also reports races with an endpoint outside any
	// atomic section.
	ReportNonAtomic bool

	mu      sync.Mutex
	threads map[int]VC
	locks   map[lockKey]*lockState
	cells   map[uint64]*cellState
	races   map[string]*Race
	order   []string // race keys in first-seen order
}

// NewRaceDetector returns an empty detector. Thread 0 is the root: setup
// work run before ThreadStart events is ordered before every thread.
func NewRaceDetector() *RaceDetector {
	return &RaceDetector{
		threads: map[int]VC{0: VC{1}},
		locks:   map[lockKey]*lockState{},
		cells:   map[uint64]*cellState{},
		races:   map[string]*Race{},
	}
}

// Races returns the distinct races found, in first-seen order.
func (d *RaceDetector) Races() []Race {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Race, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, *d.races[k])
	}
	return out
}

// Err returns the first race as an error, or nil.
func (d *RaceDetector) Err() error {
	rs := d.Races()
	if len(rs) == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %s (%d distinct races)", rs[0], len(rs))
}

func (d *RaceDetector) vc(tid int) VC {
	v, ok := d.threads[tid]
	if !ok {
		v = VC{}.bump(tid)
		d.threads[tid] = v
	}
	return v
}

// ThreadStart forks tid from the root clock (thread 0).
func (d *RaceDetector) ThreadStart(tid int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	root := d.vc(0)
	d.threads[tid] = d.vc(tid).join(root).bump(tid)
	d.threads[0] = root.bump(0)
}

// ThreadEnd joins tid back into the root clock.
func (d *RaceDetector) ThreadEnd(tid int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.threads[0] = d.vc(0).join(d.vc(tid))
}

// SectionEnter synchronizes the thread with every earlier release of the
// acquired nodes in incompatible modes.
func (d *RaceDetector) SectionEnter(tid, section int, held []mgl.PlanStep) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.vc(tid)
	for _, st := range held {
		ls := d.locks[lockKey{st.Kind, st.Class, st.Addr}]
		if ls == nil {
			continue
		}
		for m := mgl.IS; m <= mgl.X; m++ {
			if !mgl.Compatible(st.Mode, m) {
				v = v.join(ls.rel[m])
			}
		}
	}
	d.threads[tid] = v
}

// SectionExit publishes the thread's clock into each released node and
// advances the thread's epoch.
func (d *RaceDetector) SectionExit(tid, section int, held []mgl.PlanStep) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.vc(tid)
	for _, st := range held {
		k := lockKey{st.Kind, st.Class, st.Addr}
		ls := d.locks[k]
		if ls == nil {
			ls = &lockState{}
			d.locks[k] = ls
		}
		ls.rel[st.Mode] = ls.rel[st.Mode].join(v)
	}
	d.threads[tid] = v.bump(tid)
}

// Access runs the FastTrack checks for one dynamic access.
func (d *RaceDetector) Access(ev interp.AccessEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.vc(ev.Thread)
	c := d.cells[ev.Addr]
	if c == nil {
		c = &cellState{class: ev.Class, reads: map[int]uint64{}, readSites: map[int]Site{}}
		d.cells[ev.Addr] = c
	}
	site := Site{Thread: ev.Thread, Write: ev.Write, Atomic: ev.Atomic,
		Fn: ev.Fn, Pos: ev.Pos, What: ev.What}
	// Every access must be ordered after the last write.
	if c.lastWrite.clk > 0 && c.lastWrite.tid != ev.Thread &&
		c.lastWrite.clk > v.get(c.lastWrite.tid) {
		d.report(ev.Class, c.writeSite, site)
	}
	if ev.Write {
		// A write must additionally be ordered after every read since the
		// last write.
		for t, clk := range c.reads {
			if t != ev.Thread && clk > v.get(t) {
				d.report(ev.Class, c.readSites[t], site)
			}
		}
		c.lastWrite = epoch{tid: ev.Thread, clk: v.get(ev.Thread)}
		c.writeSite = site
		c.reads = map[int]uint64{}
		c.readSites = map[int]Site{}
		return
	}
	c.reads[ev.Thread] = v.get(ev.Thread)
	c.readSites[ev.Thread] = site
}

// report records a race, deduplicated by the location pair.
func (d *RaceDetector) report(class steens.NodeID, prev, cur Site) {
	if !d.ReportNonAtomic && (!prev.Atomic || !cur.Atomic) {
		return
	}
	a := fmt.Sprintf("%s:%s:%s:%v", prev.Fn, prev.Pos, prev.What, prev.Write)
	b := fmt.Sprintf("%s:%s:%s:%v", cur.Fn, cur.Pos, cur.What, cur.Write)
	if a > b {
		a, b = b, a
	}
	key := a + "||" + b
	if r, ok := d.races[key]; ok {
		r.Count++
		return
	}
	d.races[key] = &Race{Class: class, Prev: prev, Cur: cur, Count: 1}
	d.order = append(d.order, key)
}
