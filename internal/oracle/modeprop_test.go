package oracle

import (
	"testing"

	"lockinfer/internal/interp"
	"lockinfer/internal/lang"
	"lockinfer/internal/mgl"
)

// The compatibility matrix is the single contract shared by the lock
// runtime (which grants by it) and the race detector (which derives
// happens-before edges from it: an acquire synchronizes with earlier
// releases in incompatible modes). These property tests pin both sides to
// the same table: symmetry and the Figure 6(b) entries on the mgl side, and
// edge-derivation agreement on the oracle side — for every mode pair, the
// detector must order two critical sections iff the runtime would refuse to
// overlap them.

var allModes = []mgl.Mode{mgl.IS, mgl.IX, mgl.S, mgl.SIX, mgl.X}

func TestCompatibleSymmetric(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			if mgl.Compatible(a, b) != mgl.Compatible(b, a) {
				t.Errorf("Compatible(%s,%s) != Compatible(%s,%s)", a, b, b, a)
			}
		}
	}
}

// access fabricates one dynamic access event for the detector.
func access(thread int, write bool) interp.AccessEvent {
	return interp.AccessEvent{
		Thread: thread,
		Addr:   0xdead,
		Class:  1,
		Write:  write,
		Atomic: true,
		Fn:     "w",
		Pos:    lang.Pos{Line: thread, Col: 1},
		What:   "cell",
	}
}

// raceBetween runs the canonical two-thread scenario through the race
// detector: thread 1 writes a cell inside a section holding the node in
// mode a, then thread 2 writes the same cell inside a section holding the
// same node in mode b. It reports whether the detector saw a race.
func raceBetween(a, b mgl.Mode) bool {
	heldA := []mgl.PlanStep{{Kind: 1, Class: 5, Mode: a}}
	heldB := []mgl.PlanStep{{Kind: 1, Class: 5, Mode: b}}
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	d.SectionEnter(1, 0, heldA)
	d.Access(access(1, true))
	d.SectionExit(1, 0, heldA)
	d.SectionEnter(2, 0, heldB)
	d.Access(access(2, true))
	d.SectionExit(2, 0, heldB)
	return len(d.Races()) > 0
}

// TestModeMatrixOracleAgreement checks, for every pair in the mode lattice,
// that the oracle's happens-before edge derivation agrees with the
// runtime's grant table: compatible modes leave the sections unordered (the
// conflicting writes race), incompatible modes order them (no race).
func TestModeMatrixOracleAgreement(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			raced := raceBetween(a, b)
			if compatible := mgl.Compatible(a, b); raced != compatible {
				t.Errorf("modes %s/%s: Compatible=%v but detector race=%v — runtime and oracle disagree",
					a, b, compatible, raced)
			}
		}
	}
}

// reqPair is one entry of the descriptor-level table: the five request
// shapes of the runtime triple — coarse S, coarse X, fine read (IS above),
// fine write (IX above), and the root ⊤.
type reqPair struct {
	name string
	req  mgl.Req
}

var reqShapes = []reqPair{
	{"S", mgl.Req{Class: 1, Write: false}},
	{"X", mgl.Req{Class: 1, Write: true}},
	{"IS", mgl.Req{Class: 1, Fine: true, Addr: 7, Write: false}},
	{"IX", mgl.Req{Class: 1, Fine: true, Addr: 9, Write: true}},
	{"⊤", mgl.Req{Global: true, Write: true}},
}

// classModeOf extracts the mode a plan grants on the class-1 partition
// node (ModeNone if the plan never touches it).
func classModeOf(plan []mgl.PlanStep) mgl.Mode {
	for _, st := range plan {
		if st.Kind == 1 && st.Class == 1 {
			return st.Mode
		}
	}
	return mgl.ModeNone
}

// rootModeOf extracts the root mode of a plan.
func rootModeOf(plan []mgl.PlanStep) mgl.Mode {
	for _, st := range plan {
		if st.Kind == 0 {
			return st.Mode
		}
	}
	return mgl.ModeNone
}

// TestReqShapeMatrix drives every pair of descriptor shapes through
// BuildPlan and checks that the two sessions can overlap iff their plans
// are compatible on every shared node — the table the paper's §5.2 runtime
// promises. Overlap is judged where the hierarchy decides it: at the root
// for ⊤ requests, at the partition node otherwise.
func TestReqShapeMatrix(t *testing.T) {
	for _, pa := range reqShapes {
		for _, pb := range reqShapes {
			planA := mgl.BuildPlan([]mgl.Req{pa.req})
			planB := mgl.BuildPlan([]mgl.Req{pb.req})
			overlap := true
			if !mgl.Compatible(rootModeOf(planA), rootModeOf(planB)) {
				overlap = false
			}
			ca, cb := classModeOf(planA), classModeOf(planB)
			if ca != mgl.ModeNone && cb != mgl.ModeNone && !mgl.Compatible(ca, cb) {
				overlap = false
			}
			// Fine leaves conflict only when both sessions reach the same
			// address; the two fine shapes here use distinct addresses.
			want := wantOverlap[pa.name+"/"+pb.name]
			if overlap != want {
				t.Errorf("%s vs %s: overlap=%v, want %v (root %s/%s, class %s/%s)",
					pa.name, pb.name, overlap, want,
					rootModeOf(planA), rootModeOf(planB), ca, cb)
			}
		}
	}
}

// wantOverlap is the expected grant-overlap table over the request shapes,
// written out in full (both triangles: symmetry is part of the property).
// ⊤/X excludes everything; coarse X excludes everything below its class;
// coarse S admits fine reads (IS) but not fine writes (IX); the two fine
// shapes (distinct addresses) coexist with each other.
var wantOverlap = map[string]bool{
	"S/S": true, "S/X": false, "S/IS": true, "S/IX": false, "S/⊤": false,
	"X/S": false, "X/X": false, "X/IS": false, "X/IX": false, "X/⊤": false,
	"IS/S": true, "IS/X": false, "IS/IS": true, "IS/IX": true, "IS/⊤": false,
	"IX/S": false, "IX/X": false, "IX/IS": true, "IX/IX": true, "IX/⊤": false,
	"⊤/S": false, "⊤/X": false, "⊤/IS": false, "⊤/IX": false, "⊤/⊤": false,
}

// TestUpgradeWithinSession checks the S→X upgrade path: one session
// requesting both a read and a write of the same partition must join to a
// single X grant (never a separate S and X, which would self-deadlock),
// and the joined section must still order against a concurrent reader in
// the detector.
func TestUpgradeWithinSession(t *testing.T) {
	plan := mgl.BuildPlan([]mgl.Req{
		{Class: 1, Write: false},
		{Class: 1, Write: true},
	})
	if len(plan) != 2 {
		t.Fatalf("upgrade plan = %v, want [root, class]", plan)
	}
	if got := classModeOf(plan); got != mgl.X {
		t.Fatalf("S+X on one class joined to %s, want X", got)
	}
	if got := rootModeOf(plan); got != mgl.IX {
		t.Fatalf("root intention for upgraded class = %s, want IX", got)
	}
	if mgl.Join(mgl.S, mgl.X) != mgl.X || mgl.Join(mgl.X, mgl.S) != mgl.X {
		t.Fatal("Join(S,X) must be X from both sides")
	}
	// The upgraded section is exclusive: the detector must order it against
	// a plain reader's section.
	if raceBetween(mgl.X, mgl.S) || raceBetween(mgl.S, mgl.X) {
		t.Fatal("upgraded X section left unordered against an S section")
	}
}
