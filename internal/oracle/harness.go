package oracle

import (
	"fmt"

	"lockinfer/internal/interp"
	"lockinfer/internal/ir"
	"lockinfer/internal/locks"
	"lockinfer/internal/mgl"
	"lockinfer/internal/pipeline"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/steens"
	"lockinfer/internal/transform"
)

// Target is one compiled program plus the thread structure to validate: a
// lock plan, an optional single-threaded setup call, and the worker
// threads. The oracle executes targets under the checking interpreter with
// the race detector, the deadlock monitor, and (via Explore) the
// systematic scheduler attached.
type Target struct {
	Name string
	Prog *ir.Program
	Pts  *steens.Analysis
	Plan map[int]locks.Set

	Setup   *interp.ThreadSpec
	Threads []interp.ThreadSpec
	Externs map[string]interp.ExternFunc
	// StepLimit overrides the interpreter's per-thread step budget.
	StepLimit int64

	// C is the pipeline compilation the target came from, when it was built
	// by FromSource/FromCorpus/FromProgen (nil for hand-assembled targets).
	// Consumers use it for derived passes — e.g. the audit harness feeds
	// C.Andersen() to its refinement oracle.
	C *pipeline.Compilation

	// PlanMutator, when set, rewrites each session's acquisition plan —
	// the fault-injection hook for mutation testing (e.g. reordering
	// acquires to break the canonical order).
	PlanMutator func(session int64, steps []mgl.PlanStep) []mgl.PlanStep
}

// FromSource compiles mini-C source through the pipeline (parse, lower,
// points-to, inference at k) and returns a target running threads copies of
// worker fn with the given args.
func FromSource(name, src string, k int, workers []interp.ThreadSpec, setup *interp.ThreadSpec) (*Target, error) {
	c, err := pipeline.Compile(src, pipeline.Options{Name: name}.WithK(k))
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	return &Target{
		Name:    name,
		Prog:    c.Program,
		Pts:     c.Points,
		Plan:    c.Plan(),
		Setup:   setup,
		Threads: workers,
		C:       c,
	}, nil
}

// FromCorpus builds a target from one corpus program: its setup function
// and threads workers each running ops operations.
func FromCorpus(p progs.Prog, k, threads, ops int) (*Target, error) {
	c, err := progs.Compile(p, k)
	if err != nil {
		return nil, err
	}
	tg := &Target{
		Name: fmt.Sprintf("%s/k=%d", p.Name, k),
		Prog: c.IR,
		Pts:  c.Pts,
		Plan: c.C.Plan(),
		C:    c.C,
	}
	if p.Setup != "" {
		args := make([]interp.Value, len(p.SetupArgs))
		for i, a := range p.SetupArgs {
			args[i] = interp.IntV(a)
		}
		tg.Setup = &interp.ThreadSpec{Fn: p.Setup, Args: args}
	}
	for i := 0; i < threads; i++ {
		raw := p.WorkerArgs(i, ops)
		args := make([]interp.Value, len(raw))
		for j, a := range raw {
			args[j] = interp.IntV(a)
		}
		tg.Threads = append(tg.Threads, interp.ThreadSpec{Fn: p.Worker, Args: args})
	}
	return tg, nil
}

// FromProgen builds a target from a generated concurrent program
// (progen.GenerateConcurrent): init() as setup and threads copies of
// worker(ops, seed).
func FromProgen(seed int64, k, threads, ops int) (*Target, error) {
	src := progen.GenerateConcurrent(progen.ConcurrentSpec{Seed: seed})
	var specs []interp.ThreadSpec
	for i := 0; i < threads; i++ {
		specs = append(specs, interp.ThreadSpec{
			Fn:   "worker",
			Args: []interp.Value{interp.IntV(int64(ops)), interp.IntV(int64(seed) + int64(i)*31)},
		})
	}
	setup := &interp.ThreadSpec{Fn: "init"}
	return FromSource(fmt.Sprintf("progen/seed=%d/k=%d", seed, k), src, k, specs, setup)
}

// DropLock returns a copy of the target whose section plans omit every
// inferred lock matching name — the "forget one lock" mutation of the
// soundness tests. It reports how many section plans were weakened.
func (tg *Target) DropLock(name string) (*Target, int) {
	out := *tg
	out.Name = tg.Name + "/drop=" + name
	out.Plan = transform.DropLock(tg.Plan, name)
	dropped := 0
	for sec, s := range tg.Plan {
		if len(out.Plan[sec]) < len(s) {
			dropped++
		}
	}
	return &out, dropped
}

// Report is the outcome of one free-running (non-explored) execution.
type Report struct {
	Races           []Race
	OrderViolations []mgl.OrderViolation
	LockOrderCycles []mgl.OrderCycle
	Deadlocks       []mgl.DeadlockError
	RunErr          error
}

// Err summarizes the report as a single error, nil when clean.
func (r *Report) Err() error {
	switch {
	case len(r.Races) > 0:
		return fmt.Errorf("oracle: %s", r.Races[0])
	case len(r.Deadlocks) > 0:
		d := r.Deadlocks[0]
		return &d
	case len(r.OrderViolations) > 0:
		return fmt.Errorf("oracle: %s", r.OrderViolations[0])
	case len(r.LockOrderCycles) > 0:
		return fmt.Errorf("oracle: %s", r.LockOrderCycles[0])
	}
	return r.RunErr
}

// RunOnce executes the target once under the Go scheduler (real
// concurrency, no systematic exploration) with the race detector and the
// deadlock monitor attached. checked additionally enables the §4.2 lock
// coverage checker.
func (tg *Target) RunOnce(checked bool) (*Report, error) {
	m := interp.NewMachine(tg.Prog, tg.Pts, tg.Plan)
	m.Checked = checked
	if tg.StepLimit > 0 {
		m.StepLimit = tg.StepLimit
	}
	for name, fn := range tg.Externs {
		m.RegisterExtern(name, fn)
	}
	det := NewRaceDetector()
	m.Tracer = det
	watch := mgl.NewWatcher()
	m.Manager().SetWatcher(watch)
	if tg.PlanMutator != nil {
		m.Manager().PermutePlan = tg.PlanMutator
	}
	if err := m.Init(); err != nil {
		return nil, fmt.Errorf("oracle: init %s: %w", tg.Name, err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			return nil, fmt.Errorf("oracle: setup %s: %w", tg.Name, err)
		}
	}
	rep := &Report{RunErr: m.Run(tg.Threads)}
	rep.Races = det.Races()
	rep.OrderViolations = watch.OrderViolations()
	rep.LockOrderCycles = watch.LockOrderCycles()
	rep.Deadlocks = watch.Deadlocks()
	return rep, nil
}
