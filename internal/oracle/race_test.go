package oracle

import (
	"testing"

	"lockinfer/internal/interp"
	"lockinfer/internal/lang"
	"lockinfer/internal/mgl"
)

// ev builds a synthetic access event; the position doubles as the site
// identity for dedup.
func ev(thread int, addr uint64, write, atomic bool, line int) interp.AccessEvent {
	return interp.AccessEvent{
		Thread: thread, Addr: addr, Class: 7, Write: write, Atomic: atomic,
		Fn: "f", Pos: lang.Pos{Line: line, Col: 1}, What: "x",
	}
}

func fineX(addr uint64) mgl.PlanStep {
	return mgl.PlanStep{Kind: 2, Class: 3, Addr: addr, Mode: mgl.X}
}

func fineS(addr uint64) mgl.PlanStep {
	return mgl.PlanStep{Kind: 2, Class: 3, Addr: addr, Mode: mgl.S}
}

// Unordered atomic writes by two threads to one cell race.
func TestDetectorUnorderedWritesRace(t *testing.T) {
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	// Disjoint locks: no happens-before edge between the sections.
	d.SectionEnter(1, 0, []mgl.PlanStep{fineX(10)})
	d.Access(ev(1, 500, true, true, 1))
	d.SectionExit(1, 0, []mgl.PlanStep{fineX(10)})
	d.SectionEnter(2, 1, []mgl.PlanStep{fineX(11)})
	d.Access(ev(2, 500, true, true, 2))
	d.SectionExit(2, 1, []mgl.PlanStep{fineX(11)})
	if rs := d.Races(); len(rs) != 1 {
		t.Fatalf("want 1 race, got %v", rs)
	} else {
		t.Logf("race: %s", rs[0])
	}
}

// The same pattern under a common exclusive lock is ordered: release→acquire
// of incompatible modes is a happens-before edge.
func TestDetectorCommonLockNoRace(t *testing.T) {
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	d.SectionEnter(1, 0, []mgl.PlanStep{fineX(10)})
	d.Access(ev(1, 500, true, true, 1))
	d.SectionExit(1, 0, []mgl.PlanStep{fineX(10)})
	d.SectionEnter(2, 1, []mgl.PlanStep{fineX(10)})
	d.Access(ev(2, 500, true, true, 2))
	d.SectionExit(2, 1, []mgl.PlanStep{fineX(10)})
	if rs := d.Races(); len(rs) != 0 {
		t.Fatalf("lock-ordered writes flagged: %v", rs)
	}
}

// Compatible modes (S ∥ S) create no happens-before edge — but concurrent
// reads don't race, and a later writer synchronizing through X is ordered
// after both readers.
func TestDetectorSharedReadersThenWriter(t *testing.T) {
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	d.ThreadStart(3)
	d.SectionEnter(1, 0, []mgl.PlanStep{fineS(10)})
	d.Access(ev(1, 500, false, true, 1))
	d.SectionExit(1, 0, []mgl.PlanStep{fineS(10)})
	d.SectionEnter(2, 0, []mgl.PlanStep{fineS(10)})
	d.Access(ev(2, 500, false, true, 2))
	d.SectionExit(2, 0, []mgl.PlanStep{fineS(10)})
	// X is incompatible with S: the writer joins both readers' releases.
	d.SectionEnter(3, 1, []mgl.PlanStep{fineX(10)})
	d.Access(ev(3, 500, true, true, 3))
	d.SectionExit(3, 1, []mgl.PlanStep{fineX(10)})
	if rs := d.Races(); len(rs) != 0 {
		t.Fatalf("reader/reader/locked-writer flagged: %v", rs)
	}
}

// A write under S only (no exclusive right) races with another thread's
// S-protected write: S ∥ S grants no edge and both writes are unordered.
func TestDetectorSharedModeWritesRace(t *testing.T) {
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	d.SectionEnter(1, 0, []mgl.PlanStep{fineS(10)})
	d.Access(ev(1, 500, true, true, 1))
	d.SectionExit(1, 0, []mgl.PlanStep{fineS(10)})
	d.SectionEnter(2, 0, []mgl.PlanStep{fineS(10)})
	d.Access(ev(2, 500, true, true, 2))
	d.SectionExit(2, 0, []mgl.PlanStep{fineS(10)})
	if rs := d.Races(); len(rs) != 1 {
		t.Fatalf("want 1 race for S-mode writes, got %v", rs)
	}
}

// Fork and join edges order setup work before workers and workers before
// teardown.
func TestDetectorForkJoinOrdering(t *testing.T) {
	d := NewRaceDetector()
	d.ReportNonAtomic = true // these accesses run outside sections
	d.Access(ev(0, 500, true, false, 1))
	d.ThreadStart(1)
	d.Access(ev(1, 500, true, false, 2)) // ordered after the fork
	d.ThreadEnd(1)
	d.Access(ev(0, 500, false, false, 3)) // ordered after the join
	if rs := d.Races(); len(rs) != 0 {
		t.Fatalf("fork/join-ordered accesses flagged: %v", rs)
	}
}

// Without ThreadEnd the parent's read is unordered with the child's write —
// and with the default Theorem-1 scope (both endpoints atomic) the race is
// suppressed unless ReportNonAtomic is set.
func TestDetectorNonAtomicScope(t *testing.T) {
	for _, report := range []bool{false, true} {
		d := NewRaceDetector()
		d.ReportNonAtomic = report
		d.ThreadStart(1)
		d.Access(ev(1, 500, true, false, 1))
		d.Access(ev(0, 500, false, false, 2)) // no join: unordered
		want := 0
		if report {
			want = 1
		}
		if rs := d.Races(); len(rs) != want {
			t.Fatalf("ReportNonAtomic=%v: want %d races, got %v", report, want, rs)
		}
	}
}

// Coarse-lock edges work like fine ones: a class node held in X orders
// sections even when they touch many addresses.
func TestDetectorCoarseLockEdge(t *testing.T) {
	coarseX := mgl.PlanStep{Kind: 1, Class: 3, Mode: mgl.X}
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	d.SectionEnter(1, 0, []mgl.PlanStep{coarseX})
	d.Access(ev(1, 500, true, true, 1))
	d.Access(ev(1, 501, true, true, 1))
	d.SectionExit(1, 0, []mgl.PlanStep{coarseX})
	d.SectionEnter(2, 0, []mgl.PlanStep{coarseX})
	d.Access(ev(2, 501, true, true, 2))
	d.Access(ev(2, 500, false, true, 2))
	d.SectionExit(2, 0, []mgl.PlanStep{coarseX})
	if rs := d.Races(); len(rs) != 0 {
		t.Fatalf("coarse-lock-ordered accesses flagged: %v", rs)
	}
}

// Intention modes are compatible (IX ∥ IX): holding only the intention on
// the class does not order two sections — the fine leaves do. Dropping the
// fine leaf from one section's plan must produce a race.
func TestDetectorIntentionModeNoFalseEdge(t *testing.T) {
	classIX := mgl.PlanStep{Kind: 1, Class: 3, Mode: mgl.IX}
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	d.SectionEnter(1, 0, []mgl.PlanStep{classIX, fineX(10)})
	d.Access(ev(1, 500, true, true, 1))
	d.SectionExit(1, 0, []mgl.PlanStep{classIX, fineX(10)})
	// Mutated plan: same intention, missing the fine leaf.
	d.SectionEnter(2, 0, []mgl.PlanStep{classIX})
	d.Access(ev(2, 500, true, true, 2))
	d.SectionExit(2, 0, []mgl.PlanStep{classIX})
	if rs := d.Races(); len(rs) != 1 {
		t.Fatalf("want 1 race through IX∥IX (no false edge), got %v", rs)
	}
}

// Duplicate dynamic occurrences of one racy location pair collapse into one
// Race with a count.
func TestDetectorDedup(t *testing.T) {
	d := NewRaceDetector()
	d.ThreadStart(1)
	d.ThreadStart(2)
	for i := 0; i < 3; i++ {
		d.SectionEnter(1, 0, []mgl.PlanStep{fineX(10)})
		d.Access(ev(1, 500, true, true, 1))
		d.SectionExit(1, 0, []mgl.PlanStep{fineX(10)})
		d.SectionEnter(2, 1, []mgl.PlanStep{fineX(11)})
		d.Access(ev(2, 500, true, true, 2))
		d.SectionExit(2, 1, []mgl.PlanStep{fineX(11)})
	}
	rs := d.Races()
	if len(rs) != 1 {
		t.Fatalf("want 1 deduplicated race, got %d", len(rs))
	}
	if rs[0].Count < 2 {
		t.Fatalf("want repeated occurrences counted, got %d", rs[0].Count)
	}
}
