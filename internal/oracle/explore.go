package oracle

import (
	"fmt"
	"sort"

	"lockinfer/internal/interp"
	"lockinfer/internal/mgl"
	"lockinfer/internal/sim"
)

// ExploreOptions bounds the systematic scheduler.
type ExploreOptions struct {
	// Preemptions is the context-switch budget per schedule: the number of
	// times the explorer may switch away from a thread that could still
	// run. Non-preemptive switches (after a thread finishes) are free.
	// Zero means the default of 2 — the small bound that empirically
	// exposes most concurrency bugs; negative forbids preemption entirely.
	Preemptions int
	// MaxSchedules caps the number of distinct interleavings executed
	// (default 96); the result notes whether the frontier was truncated.
	MaxSchedules int
	// Checked additionally runs the §4.2 lock-coverage checker on every
	// schedule; a violation aborts that schedule and is recorded.
	Checked bool
	// ReportNonAtomic forwards to RaceDetector.ReportNonAtomic.
	ReportNonAtomic bool
}

func (o ExploreOptions) withDefaults() ExploreOptions {
	switch {
	case o.Preemptions == 0:
		o.Preemptions = 2
	case o.Preemptions < 0:
		o.Preemptions = 0
	}
	if o.MaxSchedules == 0 {
		o.MaxSchedules = 96
	}
	return o
}

// ExploreResult aggregates the oracle's findings over every executed
// interleaving.
type ExploreResult struct {
	// Schedules is the number of interleavings executed; Pruned counts
	// branches skipped because an equivalent interleaving was already
	// covered (segment-independence commutation); Truncated reports that
	// MaxSchedules cut the frontier.
	Schedules int
	Pruned    int
	Truncated bool
	// LongestSim is the largest per-schedule simulated duration (one cost
	// unit per shared access, serialized on one simulated core).
	LongestSim sim.Time

	Races           []Race
	OrderViolations []mgl.OrderViolation
	LockOrderCycles []mgl.OrderCycle
	Deadlocks       []mgl.DeadlockError
	// Errs collects per-schedule execution failures: checker violations
	// (when Checked), runtime errors, aborted deadlocks.
	Errs []error
}

// Err summarizes the findings as a single error, nil when the oracle is
// clean.
func (r *ExploreResult) Err() error {
	switch {
	case len(r.Races) > 0:
		return fmt.Errorf("oracle: %s (%d distinct races)", r.Races[0], len(r.Races))
	case len(r.Deadlocks) > 0:
		d := r.Deadlocks[0]
		return &d
	case len(r.OrderViolations) > 0:
		return fmt.Errorf("oracle: %s", r.OrderViolations[0])
	case len(r.LockOrderCycles) > 0:
		return fmt.Errorf("oracle: %s", r.LockOrderCycles[0])
	case len(r.Errs) > 0:
		return r.Errs[0]
	}
	return nil
}

// segment is the footprint of one scheduling quantum: the shared cells it
// touched and the lock nodes it acquired. Two segments are independent —
// they commute — iff no cell conflicts (same address, one side writing) and
// no lock conflicts (same node, incompatible modes).
type segment struct {
	cells map[uint64]uint8 // bit0 read, bit1 write
	locks map[lockKey]mgl.Mode
}

func newSegment() *segment {
	return &segment{cells: map[uint64]uint8{}, locks: map[lockKey]mgl.Mode{}}
}

func (a *segment) conflicts(b *segment) bool {
	for addr, am := range a.cells {
		bm, ok := b.cells[addr]
		if ok && (am|bm)&2 != 0 {
			return true
		}
	}
	for k, am := range a.locks {
		if bm, ok := b.locks[k]; ok && !mgl.Compatible(am, bm) {
			return true
		}
	}
	return false
}

// exploreTracer forwards to the race detector and records the running
// quantum's footprint. Exploration is fully serialized, so no locking is
// needed for the segment.
type exploreTracer struct {
	det *RaceDetector
	cur *segment
}

func (t *exploreTracer) Access(ev interp.AccessEvent) {
	t.det.Access(ev)
	if t.cur != nil {
		bit := uint8(1)
		if ev.Write {
			bit = 2
		}
		t.cur.cells[ev.Addr] |= bit
	}
}

func (t *exploreTracer) SectionEnter(tid, section int, held []mgl.PlanStep) {
	t.det.SectionEnter(tid, section, held)
	if t.cur != nil {
		for _, st := range held {
			k := lockKey{st.Kind, st.Class, st.Addr}
			t.cur.locks[k] = mgl.Join(t.cur.locks[k], st.Mode)
		}
	}
}

func (t *exploreTracer) SectionExit(tid, section int, held []mgl.PlanStep) {
	t.det.SectionExit(tid, section, held)
}

func (t *exploreTracer) ThreadStart(tid int) { t.det.ThreadStart(tid) }
func (t *exploreTracer) ThreadEnd(tid int)   { t.det.ThreadEnd(tid) }

// threadEvent is a thread's report back to the controller: it reached a
// scheduling point, or it finished (possibly with an error).
type threadEvent struct {
	tid  int
	done bool
	err  error
}

// controller is the token-passing scheduler: exactly one thread runs at a
// time; Yield hands the token back and parks until the controller elects
// the thread again.
type controller struct {
	events chan threadEvent
	resume []chan struct{}
}

func (c *controller) Yield(tid int, _ interp.YieldPoint) {
	c.events <- threadEvent{tid: tid}
	<-c.resume[tid]
}

// decision is one recorded choice point of an executed schedule.
type decision struct {
	chosen   int
	cur      int   // thread running before the decision; -1 if none
	runnable []int // sorted snapshot
	// preemptsBefore counts preemptions used strictly before this decision.
	preemptsBefore int
	seg            *segment // footprint of the quantum the choice started
}

// preempts reports whether electing t at this decision is a preemption.
func (d *decision) preempts(t int) bool {
	if d.cur < 0 || t == d.cur {
		return false
	}
	for _, r := range d.runnable {
		if r == d.cur {
			return true
		}
	}
	return false
}

// runTrace is one executed schedule.
type runTrace struct {
	decisions []decision
	simTime   sim.Time
	errs      []error
}

func (tr *runTrace) chosen() []int {
	out := make([]int, len(tr.decisions))
	for i, d := range tr.decisions {
		out[i] = d.chosen
	}
	return out
}

// Explore enumerates preemption-bounded interleavings of the target by
// depth-first search over scheduling decisions, running the race detector
// and the deadlock monitor on every schedule. Branches whose first
// reordered quantum provably commutes with everything executed before it
// are pruned (the DPOR-lite persistent-set approximation): the already
// executed schedule covers an equivalent interleaving.
func (tg *Target) Explore(opts ExploreOptions) (*ExploreResult, error) {
	opts = opts.withDefaults()
	res := &ExploreResult{}
	raceKeys := map[string]bool{}
	orderKeys := map[string]bool{}

	stack := [][]int{nil} // schedule prefixes to run; nil = all-defaults
	for len(stack) > 0 {
		if res.Schedules >= opts.MaxSchedules {
			res.Truncated = true
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		trace, det, watch, err := tg.runSchedule(prefix, opts)
		if err != nil {
			return nil, err
		}
		res.Schedules++
		if trace.simTime > res.LongestSim {
			res.LongestSim = trace.simTime
		}
		res.Errs = append(res.Errs, trace.errs...)
		for _, r := range det.Races() {
			k := r.String()
			if !raceKeys[k] {
				raceKeys[k] = true
				res.Races = append(res.Races, r)
			}
		}
		for _, v := range watch.OrderViolations() {
			k := v.String()
			if !orderKeys[k] {
				orderKeys[k] = true
				res.OrderViolations = append(res.OrderViolations, v)
			}
		}
		for _, c := range watch.LockOrderCycles() {
			k := c.String()
			if !orderKeys[k] {
				orderKeys[k] = true
				res.LockOrderCycles = append(res.LockOrderCycles, c)
			}
		}
		res.Deadlocks = append(res.Deadlocks, watch.Deadlocks()...)

		// Expand: branch on every alternative choice at decisions beyond
		// the pinned prefix.
		chosen := trace.chosen()
		for i := len(prefix); i < len(trace.decisions); i++ {
			d := &trace.decisions[i]
			budget := d.preemptsBefore
			for _, t := range d.runnable {
				if t == d.chosen {
					continue
				}
				if d.preempts(t) && budget >= opts.Preemptions {
					continue
				}
				if pruneBranch(trace, i, t) {
					res.Pruned++
					continue
				}
				np := make([]int, i+1)
				copy(np, chosen[:i])
				np[i] = t
				stack = append(stack, np)
			}
		}
	}
	return res, nil
}

// pruneBranch reports whether electing t at decision i is covered by the
// executed trace. Let j be t's next quantum in this run. If t's ENTIRE
// remaining execution (the union footprint of its quanta from j onward)
// commutes with every quantum the other threads executed in [i, j), then
// running t earlier only swaps independent quanta: the interleavings of
// t's future with the post-j suffix are enumerated as branches at
// decisions ≥ j, so nothing new is reachable from (i, t). Checking only
// t's next quantum would be wrong — a conflicting atomic section hiding
// behind an innocuous startup quantum must still motivate the branch.
func pruneBranch(trace *runTrace, i int, t int) bool {
	j := -1
	for k := i + 1; k < len(trace.decisions); k++ {
		if trace.decisions[k].chosen == t {
			j = k
			break
		}
	}
	if j < 0 {
		return false
	}
	future := newSegment()
	for k := j; k < len(trace.decisions); k++ {
		d := &trace.decisions[k]
		if d.chosen != t || d.seg == nil {
			continue
		}
		for addr, m := range d.seg.cells {
			future.cells[addr] |= m
		}
		for lk, m := range d.seg.locks {
			future.locks[lk] = mgl.Join(future.locks[lk], m)
		}
	}
	for k := i; k < j; k++ {
		if trace.decisions[k].seg != nil && future.conflicts(trace.decisions[k].seg) {
			return false
		}
	}
	return true
}

// runSchedule executes one interleaving: prefix pins the first choices,
// every later decision defaults to continuing the running thread.
func (tg *Target) runSchedule(prefix []int, opts ExploreOptions) (*runTrace, *RaceDetector, *mgl.Watcher, error) {
	m := interp.NewMachine(tg.Prog, tg.Pts, tg.Plan)
	m.Checked = opts.Checked
	if tg.StepLimit > 0 {
		m.StepLimit = tg.StepLimit
	}
	for name, fn := range tg.Externs {
		m.RegisterExtern(name, fn)
	}
	det := NewRaceDetector()
	det.ReportNonAtomic = opts.ReportNonAtomic
	tr := &exploreTracer{det: det}
	m.Tracer = tr
	watch := mgl.NewWatcher()
	m.Manager().SetWatcher(watch)
	if tg.PlanMutator != nil {
		m.Manager().PermutePlan = tg.PlanMutator
	}

	if err := m.Init(); err != nil {
		return nil, nil, nil, fmt.Errorf("oracle: init: %w", err)
	}
	if tg.Setup != nil {
		if _, err := m.Call(0, tg.Setup.Fn, tg.Setup.Args); err != nil {
			return nil, nil, nil, fmt.Errorf("oracle: setup: %w", err)
		}
	}

	n := len(tg.Threads)
	ctl := &controller{events: make(chan threadEvent), resume: make([]chan struct{}, n+1)}
	for tid := 1; tid <= n; tid++ {
		ctl.resume[tid] = make(chan struct{})
	}
	m.Sched = ctl
	for i, spec := range tg.Threads {
		tid := i + 1
		det.ThreadStart(tid)
		go func(tid int, spec interp.ThreadSpec) {
			defer func() {
				if r := recover(); r != nil {
					ctl.events <- threadEvent{tid: tid, done: true,
						err: fmt.Errorf("thread %d panic: %v", tid, r)}
				}
			}()
			<-ctl.resume[tid]
			_, err := m.Call(tid, spec.Fn, spec.Args)
			det.ThreadEnd(tid)
			ctl.events <- threadEvent{tid: tid, done: true, err: err}
		}(tid, spec)
	}

	runnable := make([]int, n)
	for i := range runnable {
		runnable[i] = i + 1
	}
	trace := &runTrace{}
	cur := -1
	preempts := 0

	// The schedule unfolds on the simulated machine: each quantum is one
	// computation event, costing one unit per shared access. Serialized
	// exploration uses a single simulated core.
	eng := sim.NewEngine(1)
	var step func()
	step = func() {
		if len(runnable) == 0 {
			return
		}
		di := len(trace.decisions)
		pick := cur
		if pick < 0 || !contains(runnable, pick) {
			pick = runnable[0]
		}
		if di < len(prefix) && contains(runnable, prefix[di]) {
			pick = prefix[di]
		}
		d := decision{
			chosen:         pick,
			cur:            cur,
			runnable:       append([]int(nil), runnable...),
			preemptsBefore: preempts,
			seg:            newSegment(),
		}
		if d.preempts(pick) {
			preempts++
		}
		trace.decisions = append(trace.decisions, d)
		tr.cur = d.seg
		ctl.resume[pick] <- struct{}{}
		ev := <-ctl.events
		tr.cur = nil
		if ev.done {
			if ev.err != nil {
				trace.errs = append(trace.errs, ev.err)
			}
			runnable = remove(runnable, pick)
			cur = -1
		} else {
			cur = pick
		}
		eng.Compute(sim.Time(len(d.seg.cells))+1, step)
	}
	eng.After(0, step)
	trace.simTime = eng.Run()
	return trace, det, watch, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func remove(xs []int, x int) []int {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
