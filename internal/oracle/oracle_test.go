package oracle

import (
	"testing"

	"lockinfer/internal/interp"
	"lockinfer/internal/mgl"
	"lockinfer/internal/progs"
)

func mustCorpus(t *testing.T, name string, k, threads, ops int) *Target {
	t.Helper()
	p, err := progs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := FromCorpus(p, k, threads, ops)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// planLockNames collects the distinct rendered lock names across a plan.
func planLockNames(tg *Target) []string {
	seen := map[string]bool{}
	var out []string
	for _, set := range tg.Plan {
		for _, l := range set.Sorted() {
			if s := l.String(); !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// The explorer enumerates multiple interleavings of fig2 and finds the
// inferred locks clean: no races, no deadlocks, no order violations.
func TestExploreFig2Clean(t *testing.T) {
	tg := mustCorpus(t, "fig2", 2, 2, 3)
	res, err := tg.Explore(ExploreOptions{Preemptions: 2, MaxSchedules: 24, Checked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("oracle fired on inferred locks: %v", err)
	}
	if res.Schedules < 2 {
		t.Fatalf("explored only %d schedule(s)", res.Schedules)
	}
	if res.LongestSim == 0 {
		t.Fatalf("no simulated time accounted")
	}
	t.Logf("schedules=%d pruned=%d truncated=%v longestSim=%v",
		res.Schedules, res.Pruned, res.Truncated, res.LongestSim)
}

// Exploration is deterministic: the same target explored twice yields the
// same schedule and prune counts.
func TestExploreDeterministic(t *testing.T) {
	opts := ExploreOptions{Preemptions: 1, MaxSchedules: 16, Checked: true}
	a, err := mustCorpus(t, "fig2", 2, 2, 2).Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustCorpus(t, "fig2", 2, 2, 2).Explore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedules != b.Schedules || a.Pruned != b.Pruned {
		t.Fatalf("nondeterministic exploration: (%d,%d) vs (%d,%d)",
			a.Schedules, a.Pruned, b.Schedules, b.Pruned)
	}
}

// A larger preemption budget explores at least as many schedules.
func TestExplorePreemptionBoundMonotone(t *testing.T) {
	budgets := []int{-1, 1, 2} // none, one, two preemptions
	counts := make([]int, len(budgets))
	for i, p := range budgets {
		res, err := mustCorpus(t, "fig2", 2, 2, 2).Explore(
			ExploreOptions{Preemptions: p, MaxSchedules: 200, Checked: false})
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = res.Schedules
	}
	if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
		t.Fatalf("schedule counts not monotone in preemption budget: %v", counts)
	}
	t.Logf("schedules by preemption budget: %v", counts)
}

// Cross-validation on the corpus: every program, compiled at several k
// values, runs clean under the full oracle. Short mode keeps a fast subset
// for tier-1.
func TestCorpusRunOnceClean(t *testing.T) {
	ks := []int{1, 2}
	for _, p := range progs.All() {
		p := p
		if testing.Short() && p.Name != "fig2" && p.Name != "move" && p.Name != "list" {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, k := range ks {
				tg, err := FromCorpus(p, k, 3, 4)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := tg.RunOnce(true)
				if err != nil {
					t.Fatal(err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("k=%d: oracle fired: %v", k, err)
				}
			}
		})
	}
}

// Systematic exploration over a corpus subset: bounded interleavings, all
// clean under the inferred locks.
func TestCorpusExploreClean(t *testing.T) {
	names := []string{"fig2", "move", "list", "hashtable"}
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tg := mustCorpus(t, name, 2, 2, 2)
			res, err := tg.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 12, Checked: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("oracle fired: %v", err)
			}
		})
	}
}

// Mutation: removing ALL inferred locks (DropLock with the empty pattern
// matches every lock) must make the race detector fire — Theorem 1 run in
// reverse.
func TestDropAllLocksRaces(t *testing.T) {
	// fig2 is no use here: its workers allocate fresh objects per
	// iteration and share nothing, so it cannot race even lock-free. The
	// mutation check needs programs with genuinely shared state.
	for _, name := range []string{"move", "list"} {
		// list needs enough ops for the 66/17 get/put mix to issue writes.
		tg := mustCorpus(t, name, 2, 2, 12)
		mut, dropped := tg.DropLock("")
		if dropped == 0 {
			t.Fatalf("%s: no locks to drop", name)
		}
		res, err := mut.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Races) == 0 {
			t.Fatalf("%s: dropped all locks but detector stayed silent", name)
		}
		t.Logf("%s: %d races after dropping %d section plans, e.g. %s",
			name, len(res.Races), dropped, res.Races[0])
	}
}

// counterSrc shares exactly one cell through one partition: its section's
// plan is a single lock, so dropping that one lock must produce a
// happens-before race.
const counterSrc = `
int* c;

void init() {
  c = new int;
  *c = 0;
}

void worker(int iters, int seed) {
  int i = 0;
  while (i < iters) {
    atomic {
      int v = *c;
      *c = v + 1;
    }
    i = i + 1;
  }
}
`

// Mutation: dropping a single inferred lock. On the one-lock counter the
// race detector itself must fire; the unmutated baseline stays clean.
func TestDropSingleLockRaces(t *testing.T) {
	workers := []interp.ThreadSpec{
		{Fn: "worker", Args: []interp.Value{interp.IntV(3), interp.IntV(1)}},
		{Fn: "worker", Args: []interp.Value{interp.IntV(3), interp.IntV(2)}},
	}
	tg, err := FromSource("counter", counterSrc, 2, workers,
		&interp.ThreadSpec{Fn: "init"})
	if err != nil {
		t.Fatal(err)
	}
	names := planLockNames(tg)
	if len(names) == 0 {
		t.Fatalf("no locks inferred for counter")
	}
	base, err := tg.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 8, Checked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Err(); err != nil {
		t.Fatalf("baseline not clean: %v", err)
	}
	fired := 0
	for _, lock := range names {
		mut, dropped := tg.DropLock(lock)
		if dropped == 0 {
			continue
		}
		res, err := mut.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Races) > 0 {
			fired++
			t.Logf("drop %s -> %s", lock, res.Races[0])
		}
	}
	if fired == 0 {
		t.Fatalf("no single-lock drop produced a race")
	}
}

// On move, a single dropped lock does NOT produce a happens-before race —
// both sections still synchronize through the remaining partition's lock,
// which orders the whole sections. The drop is still caught, by the §4.2
// coverage checker: an access with no covering lock is a violation on
// every schedule.
func TestDropSingleLockCheckerFires(t *testing.T) {
	tg := mustCorpus(t, "move", 2, 2, 3)
	fired := 0
	for _, lock := range planLockNames(tg) {
		mut, dropped := tg.DropLock(lock)
		if dropped == 0 {
			continue
		}
		res, err := mut.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 4, Checked: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Races) > 0 || len(res.Errs) > 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatalf("no single-lock drop tripped the oracle")
	}
}

// Mutation: reordering acquisitions. Odd interpreter sessions acquire in
// reverse order; the monitor must flag canonical-order violations and a
// lock-order cycle, while the detector stays quiet (the locks still cover
// the accesses).
func TestReorderAcquiresFlagged(t *testing.T) {
	tg := mustCorpus(t, "move", 2, 2, 3)
	tg.PlanMutator = func(session int64, steps []mgl.PlanStep) []mgl.PlanStep {
		if session%2 == 0 {
			return steps
		}
		out := make([]mgl.PlanStep, len(steps))
		for i, st := range steps {
			out[len(steps)-1-i] = st
		}
		return out
	}
	res, err := tg.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OrderViolations) == 0 {
		t.Fatalf("reversed acquisition order produced no order violation")
	}
	if len(res.LockOrderCycles) == 0 {
		t.Fatalf("mixed acquisition orders produced no lock-order cycle")
	}
	if len(res.Races) != 0 {
		t.Fatalf("reordering (not dropping) locks should not race, got %v", res.Races[0])
	}
	t.Logf("violation: %s; cycle: %s", res.OrderViolations[0], res.LockOrderCycles[0])
}

// Property-based soundness: generated concurrent programs, several seeds ×
// several k values, all clean under the oracle. This is the paper's
// Theorem 1 as an executable property.
func TestProgenSoundnessProperty(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		for _, k := range []int{1, 2, 3} {
			k := k
			t.Run(progenName(seed, k), func(t *testing.T) {
				t.Parallel()
				tg, err := FromProgen(seed, k, 2, 2)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := tg.RunOnce(true)
				if err != nil {
					t.Fatal(err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("oracle fired: %v", err)
				}
				// Systematic exploration at k=2 (bounded to keep the
				// property suite fast).
				if k == 2 {
					res, err := tg.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 6, Checked: true})
					if err != nil {
						t.Fatal(err)
					}
					if err := res.Err(); err != nil {
						t.Fatalf("explore: oracle fired: %v", err)
					}
				}
			})
		}
	}
}

func progenName(seed int64, k int) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10)) + "k" + string(rune('0'+k))
}

// Generated programs also support the mutation check: across a handful of
// seeds, dropping every lock must produce at least one detected race.
func TestProgenMutationRaces(t *testing.T) {
	fired := 0
	for seed := int64(1); seed <= 5; seed++ {
		tg, err := FromProgen(seed, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		mut, _ := tg.DropLock("")
		res, err := mut.Explore(ExploreOptions{Preemptions: 1, MaxSchedules: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Races) > 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatalf("no generated program raced after dropping all locks")
	}
	t.Logf("%d/5 seeds raced without locks", fired)
}
