package lockinfer

import (
	"sync"
	"testing"

	"lockinfer/internal/bench"
	"lockinfer/internal/infer"
	"lockinfer/internal/ir"
	"lockinfer/internal/lang"
	"lockinfer/internal/mem"
	"lockinfer/internal/mgl"
	"lockinfer/internal/progen"
	"lockinfer/internal/progs"
	"lockinfer/internal/sim"
	"lockinfer/internal/steens"
	"lockinfer/internal/stm"
	"lockinfer/internal/workload"
)

// The four benches below regenerate the paper's tables and figures; run
// them with -v to see the reproduced rows and series:
//
//	go test -bench 'Table|Figure' -benchtime 1x -v
//
// cmd/lockbench prints the same artifacts with full-size parameters.

// BenchmarkTable1 regenerates Table 1 (analysis times over the corpus,
// SPEC substitutes scaled down to keep iterations fast; use cmd/lockbench
// for full size).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(bench.Table1Options{SPECScale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable1(rows))
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (lock distribution as k sweeps).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cols, err := bench.Figure7([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatFigure7(cols))
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (simulated 8-thread execution times
// under Global, Coarse, Fine+Coarse and STM).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(bench.RunOptions{
			Cores: 8, Threads: 8, OpsPerThread: 250, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable2(rows))
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (time vs. threads for rbtree,
// hashtable-2, TH, genome, kmeans).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure8(bench.RunOptions{
			Cores: 8, Threads: 8, OpsPerThread: 250, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatFigure8(series))
		}
	}
}

// BenchmarkAblations regenerates the two ablation studies.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.RunOptions{Cores: 8, Threads: 8, OpsPerThread: 250, Seed: 11}
		ro, err := bench.AblateReadOnlyLocks(opt)
		if err != nil {
			b.Fatal(err)
		}
		parts, err := bench.AblatePartitions(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatAblation("Σε removed:", ro) +
				bench.FormatAblation("Σ≡ removed:", parts))
		}
	}
}

// Component micro-benchmarks.

// BenchmarkInference measures the end-to-end analysis of the move example.
func BenchmarkInference(b *testing.B) {
	p, err := progs.Get("move")
	if err != nil {
		b.Fatal(err)
	}
	ast, err := lang.Parse(p.Source())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := steens.Run(prog)
		infer.New(prog, pts, infer.Options{K: 3}).AnalyzeAll()
	}
}

// BenchmarkSteensgaard measures the points-to analysis on a 5 KLoC
// program.
func BenchmarkSteensgaard(b *testing.B) {
	src := progen.Generate(progen.Spec{Name: "bench", KLoC: 5, Seed: 9})
	ast, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steens.Run(prog)
	}
}

// BenchmarkParser measures the front end on a 5 KLoC program.
func BenchmarkParser(b *testing.B) {
	src := progen.Generate(progen.Spec{Name: "bench", KLoC: 5, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMGLAcquire measures one uncontended fine-grain acquire/release
// cycle (three lock-tree nodes).
func BenchmarkMGLAcquire(b *testing.B) {
	m := mgl.NewManager()
	s := m.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ToAcquire(mgl.Req{Class: 1, Fine: true, Addr: 42, Write: true})
		s.AcquireAll()
		s.ReleaseAll()
	}
}

// BenchmarkSTMCounter measures contended TL2 increments with the real
// goroutine runtime.
func BenchmarkSTMCounter(b *testing.B) {
	rt := stm.New()
	c := mem.NewCell(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rt.Atomic(func(tx *stm.Tx) {
				tx.Store(c, tx.Load(c).(int)+1)
			})
		}
	})
}

// BenchmarkWorkloadReal runs the hashtable-2 workload on the real
// goroutine runtimes (wall-clock shapes depend on host core count; the
// simulated Table 2 is the calibrated artifact).
func BenchmarkWorkloadReal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.NewHashtable2("hashtable-2", workload.HighMix, workload.GrainFine)
		ex := workload.NewMGLExec("mgl-fine")
		if _, err := workload.Run(w, ex, workload.RunConfig{
			Threads: 4, OpsPerThread: 500, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures the discrete-event engine itself.
func BenchmarkSimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.NewList("list", workload.LowMix)
		if _, err := sim.Run(w, sim.ModeMGL, sim.Config{
			Cores: 8, Threads: 8, OpsPerThread: 200, Seed: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures checked concurrent execution of the move
// program.
func BenchmarkInterpreter(b *testing.B) {
	p, err := progs.Get("move")
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compile(p.Source(), WithK(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := c.NewMachine(Checked())
		if err := m.Init(); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Call(0, "setup", []Value{IntV(8)}); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.Run([]ThreadSpec{
				{Fn: "worker", Args: []Value{IntV(20), IntV(0)}},
				{Fn: "worker", Args: []Value{IntV(20), IntV(1)}},
			})
		}()
		wg.Wait()
	}
}
