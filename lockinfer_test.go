package lockinfer

import (
	"strings"
	"testing"
)

const apiSrc = `
struct cell { int v; }
cell* shared;

void init() {
  shared = new cell;
}

void add(int n) {
  atomic {
    shared->v = shared->v + n;
  }
}

int read() {
  int v;
  atomic {
    v = shared->v;
  }
  return v;
}
`

func TestCompileAndReport(t *testing.T) {
	c, err := Compile(apiSrc, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	report := c.LockReport()
	if !strings.Contains(report, "&(shared->v)/rw") {
		t.Errorf("report missing the fine rw lock:\n%s", report)
	}
	if !strings.Contains(report, "&(shared->v)/ro") &&
		!strings.Contains(report, "&(shared)/ro") {
		t.Errorf("report missing read locks:\n%s", report)
	}
	src := c.TransformedSource()
	if !strings.Contains(src, "acquire_all();") || strings.Contains(src, "atomic {") {
		t.Errorf("transformed source wrong:\n%s", src)
	}
}

func TestPublicAPIExecution(t *testing.T) {
	c, err := Compile(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(Checked())
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(0, "init", nil); err != nil {
		t.Fatal(err)
	}
	specs := []ThreadSpec{
		{Fn: "add", Args: []Value{IntV(5)}},
		{Fn: "add", Args: []Value{IntV(7)}},
		{Fn: "add", Args: []Value{IntV(9)}},
	}
	if err := m.Run(specs); err != nil {
		t.Fatal(err)
	}
	v, err := m.Call(0, "read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 21 {
		t.Errorf("shared->v = %s, want 21", v)
	}
}

func TestPlans(t *testing.T) {
	c, err := Compile(apiSrc, WithK(9))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.Plan()); n != 2 {
		t.Fatalf("plan has %d sections, want 2", n)
	}
	for id, set := range c.GlobalPlan() {
		if len(set) != 1 {
			t.Errorf("global plan section %d has %d locks", id, len(set))
		}
	}
	for _, set := range c.CoarsePlan() {
		for _, l := range set {
			if l.Fine {
				t.Errorf("coarse plan contains fine lock %s", l)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("void f() {"); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := Compile("void f() { x = 1; }"); err == nil {
		t.Error("lowering error not reported")
	}
}

func TestExternSpecsThroughFacade(t *testing.T) {
	src := `
struct rec { int v; }
rec* db;
rec* find(int k);

void init() { db = new rec; }

void touch(int k) {
  atomic {
    rec* r = find(k);
    if (r != null) {
      r->v = r->v + 1;
    }
  }
}
`
	c, err := Compile(src, WithK(3), WithSpecs(map[string]ExternSpec{
		"find": {Reads: []string{"db"}, ReturnsFrom: "db"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	report := c.LockReport()
	if strings.Contains(report, "⊤/rw") {
		t.Errorf("spec provided but global lock inferred:\n%s", report)
	}
	m := c.NewMachine(Checked())
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(0, "init", nil); err != nil {
		t.Fatal(err)
	}
	db, err := m.Global("db")
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterExtern("find", func(args []Value) (Value, error) {
		if args[0].Int%2 == 0 {
			return db, nil
		}
		return Value{}, nil
	})
	specs := []ThreadSpec{
		{Fn: "touch", Args: []Value{IntV(2)}},
		{Fn: "touch", Args: []Value{IntV(3)}},
		{Fn: "touch", Args: []Value{IntV(4)}},
	}
	if err := m.Run(specs); err != nil {
		t.Fatalf("checked run with extern spec: %v", err)
	}
}
